package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Theorem 4.3 — uniform approximation ratio scales like ln n",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "Lemma 4.2 — color-class success probability vs constant K",
		Run:   runE3,
	})
}

// family is a named deterministic graph generator used by several sweeps.
type family struct {
	name  string
	build func(n int, src *rng.Source) *graph.Graph
}

func e2Families() []family {
	return []family{
		{"gnp", func(n int, src *rng.Source) *graph.Graph {
			p := 10 * math.Log(float64(n)) / float64(n)
			if p > 1 {
				p = 1
			}
			return gen.GNP(n, p, src)
		}},
		{"udg", func(n int, src *rng.Source) *graph.Graph {
			side := math.Sqrt(float64(n)) // density 1 node per unit area
			radius := math.Sqrt(10 * math.Log(float64(n)) / math.Pi)
			g, _ := gen.RandomUDG(n, side, radius, src)
			return g
		}},
		{"circulant", func(n int, src *rng.Source) *graph.Graph {
			d := 8 * int(math.Log(float64(n)))
			if d%2 == 1 {
				d++
			}
			if d >= n-1 {
				d = (n - 2) / 2 * 2
			}
			return gen.Circulant(n, d)
		}},
		{"hudg", func(n int, src *rng.Source) *graph.Graph {
			side := math.Sqrt(float64(n))
			rMax := math.Sqrt(16 * math.Log(float64(n)) / math.Pi)
			g, _, _ := gen.HeterogeneousUDG(n, side, rMax/2, rMax, src)
			return g
		}},
	}
}

func e2Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{64, 128, 256}
	}
	return []int{64, 128, 256, 512, 1024, 2048}
}

func runE2(cfg Config) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Theorem 4.3 — uniform approximation ratio scales like ln n",
		Header: []string{"family", "n", "δ", "UB=b(δ+1)", "lifetime", "ratio", "ratio/ln n"},
	}
	const b = 3
	root := rng.New(cfg.Seed + 2)
	for _, fam := range e2Families() {
		for _, n := range e2Sizes(cfg) {
			type sample struct {
				ratio, lifetime, delta float64
				ok                     bool
			}
			srcs := root.SplitN(cfg.trials())
			samples := mapTrials(cfg, "E2", cfg.trials(), func(i int) sample {
				src := srcs[i]
				g := fam.build(n, src)
				s := solve(solver.NameUniform, g, uniformBudgets(g.N(), b), 1, 30, src.Split())
				if s.Lifetime() == 0 {
					return sample{}
				}
				ub := core.UniformUpperBound(g, b)
				return sample{
					ratio:    float64(ub) / float64(s.Lifetime()),
					lifetime: float64(s.Lifetime()),
					delta:    float64(g.MinDegree()),
					ok:       true,
				}
			})
			var ratios, lifetimes, deltas []float64
			for _, sm := range samples {
				if sm.ok {
					ratios = append(ratios, sm.ratio)
					lifetimes = append(lifetimes, sm.lifetime)
					deltas = append(deltas, sm.delta)
				}
			}
			if len(ratios) == 0 {
				continue
			}
			r := stats.Summarize(ratios)
			l := stats.Summarize(lifetimes)
			d := stats.Summarize(deltas)
			t.AddRow(fam.name, itoa(n), f2(d.Mean), f2(float64(b)*(d.Mean+1)),
				f2(l.Mean), f2(r.Mean), f3(r.Mean/math.Log(float64(n))))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: ratio grows with n but ratio/ln n stays near a constant (≈ K = 3 plus rounding loss)")
	return t
}

func e3Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{128}
	}
	return []int{128, 512, 2048}
}

func runE3(cfg Config) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Lemma 4.2 — color-class success probability vs constant K",
		Header: []string{"n", "K", "guaranteed classes", "P[all guaranteed classes dominate]", "mean valid prefix", "mean raw classes"},
	}
	root := rng.New(cfg.Seed + 3)
	trials := 4 * cfg.trials()
	for _, n := range e3Sizes(cfg) {
		p := 12 * math.Log(float64(n)) / float64(n)
		if p > 1 {
			p = 1
		}
		g := gen.GNP(n, p, root.Split())
		for _, k := range []float64{1, 2, 3} {
			guaranteed := domatic.GuaranteedClasses(g, k)
			srcs := root.SplitN(trials)
			type sample struct{ prefix, raw float64 }
			samples := mapTrials(cfg, "E3", trials, func(i int) sample {
				part := domatic.RandomColoring(g, k, srcs[i])
				return sample{
					prefix: float64(domatic.ValidPrefix(g, part)),
					raw:    float64(len(part)),
				}
			})
			success := 0
			var prefixes, raws []float64
			for _, sm := range samples {
				if int(sm.prefix) >= guaranteed {
					success++
				}
				prefixes = append(prefixes, sm.prefix)
				raws = append(raws, sm.raw)
			}
			t.AddRow(itoa(n), f2(k), itoa(guaranteed),
				pct(float64(success)/float64(trials)),
				f2(stats.Summarize(prefixes).Mean),
				f2(stats.Summarize(raws).Mean))
		}
	}
	t.Notes = append(t.Notes,
		"K=3 is the paper's analysis constant: success should approach 100% as n grows",
		"K=1 offers ~3× more raw classes but the guaranteed prefix fails more often")
	return t
}
