package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Extension — centralized post-processing on top of the distributed schedules",
		Run:   runE17,
	})
}

func runE17(cfg Config) *Table {
	t := &Table{
		ID:     "E17",
		Title:  "Extension — centralized post-processing on top of the distributed schedules",
		Header: []string{"algorithm", "raw lifetime", "+minimalize+extend", "UB", "raw/UB", "squeezed/UB"},
	}
	root := rng.New(cfg.Seed + 17)
	n := 400
	if cfg.Quick {
		n = 120
	}
	const b = 4
	p := 12 * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	type variant struct {
		name string
		run  func(src *rng.Source, g *graph.Graph, batteries []int) *core.Schedule
	}
	variants := []variant{
		{"Algorithm 1 (uniform)", func(src *rng.Source, g *graph.Graph, _ []int) *core.Schedule {
			return solve(solver.NameUniform, g, uniformBudgets(g.N(), b), 1, 30, src)
		}},
		{"Algorithm 2 (general)", func(src *rng.Source, g *graph.Graph, batteries []int) *core.Schedule {
			return solve(solver.NameGeneral, g, batteries, 1, 30, src)
		}},
	}
	for _, v := range variants {
		srcs := root.SplitN(cfg.trials())
		type sample struct {
			raw, squeezed, ub float64
			ok                bool
		}
		samples := mapTrials(cfg, "E17", cfg.trials(), func(i int) sample {
			src := srcs[i]
			g := gen.GNP(n, p, src)
			batteries := make([]int, n)
			for j := range batteries {
				batteries[j] = b
			}
			s := v.run(src.Split(), g, batteries)
			if s.Lifetime() == 0 {
				return sample{}
			}
			sq := sched.Squeeze(g, s, batteries, 1)
			return sample{
				raw:      float64(s.Lifetime()),
				squeezed: float64(sq.Lifetime()),
				ub:       float64(core.GeneralUpperBound(g, batteries)),
				ok:       true,
			}
		})
		var raw, squeezed, ubs []float64
		for _, sm := range samples {
			if sm.ok {
				raw = append(raw, sm.raw)
				squeezed = append(squeezed, sm.squeezed)
				ubs = append(ubs, sm.ub)
			}
		}
		if len(raw) == 0 {
			continue
		}
		r := stats.Summarize(raw)
		sq := stats.Summarize(squeezed)
		ub := stats.Summarize(ubs)
		t.AddRow(v.name, f2(r.Mean), f2(sq.Mean), f2(ub.Mean),
			f2(r.Mean/ub.Mean), f2(sq.Mean/ub.Mean))
	}
	t.Notes = append(t.Notes,
		"Squeeze = prune each phase to a minimal dominating set, then greedily extract further sets from residual budget",
		"the distributed schedules leave most of the b(δ+1) budget untouched (the log-factor gap);",
		"a centralized post-pass recovers most of it — quantifying the price the paper pays for locality")
	return t
}
