package experiments

import (
	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Ablation — truncate-at-first-failure vs drop-failed-classes repair",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Ablation — local two-hop δ² color range vs global δ range",
		Run:   runE13,
	})
}

func runE12(cfg Config) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "Ablation — truncate-at-first-failure vs drop-failed-classes repair",
		Header: []string{"K", "raw lifetime", "truncated", "dropped", "drop gain"},
	}
	root := rng.New(cfg.Seed + 12)
	n := 512
	if cfg.Quick {
		n = 128
	}
	const b = 3
	g := gen.GNP(n, 0.12, root.Split())
	for _, k := range []float64{1, 2, 3} {
		srcs := root.SplitN(cfg.trials())
		type sample struct{ raw, trunc, drop float64 }
		samples := mapTrials(cfg, "E12", cfg.trials(), func(i int) sample {
			s := core.Uniform(g, b, core.Options{K: k, Src: srcs[i]})
			return sample{
				raw:   float64(s.Lifetime()),
				trunc: float64(s.TruncateInvalid(g, 1).Lifetime()),
				drop:  float64(s.DropInvalid(g, 1).Lifetime()),
			}
		})
		var raws, truncs, drops []float64
		for _, sm := range samples {
			raws = append(raws, sm.raw)
			truncs = append(truncs, sm.trunc)
			drops = append(drops, sm.drop)
		}
		r := stats.Summarize(raws)
		tr := stats.Summarize(truncs)
		dr := stats.Summarize(drops)
		gain := 0.0
		if tr.Mean > 0 {
			gain = dr.Mean / tr.Mean
		}
		t.AddRow(f2(k), f2(r.Mean), f2(tr.Mean), f2(dr.Mean), f2(gain))
	}
	t.Notes = append(t.Notes,
		"truncation models uncoordinated deployments (stop at first broken class); dropping models a coordinator that skips them",
		"with K=3 failures are rare and the repair strategies coincide; small K widens the gap")
	return t
}

func runE13(cfg Config) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "Ablation — local two-hop δ² color range vs global δ range",
		Header: []string{"deployment", "local valid classes", "global valid classes", "local active/slot", "global active/slot", "per-slot energy saving"},
	}
	root := rng.New(cfg.Seed + 13)
	n := 600
	if cfg.Quick {
		n = 200
	}
	deployments := []struct {
		name string
		udg  func(src *rng.Source) *graph.Graph
	}{
		{"uniform", func(src *rng.Source) *graph.Graph {
			g, _ := gen.RandomUDG(n, 24, 3.2, src)
			return g
		}},
		{"clustered", func(src *rng.Source) *graph.Graph {
			g, _ := gen.ClusteredUDG(n, 6, 24, 1.2, 3.2, src)
			return g
		}},
	}
	for _, dep := range deployments {
		srcs := root.SplitN(cfg.trials())
		type sample struct{ local, global, lSize, gSize float64 }
		samples := mapTrials(cfg, "E13", cfg.trials(), func(i int) sample {
			src := srcs[i]
			g := dep.udg(src)
			local := domatic.RandomColoring(g, 3, src.Split())
			global := domatic.RandomColoringGlobal(g, 3, src.Split())
			lp, gp := domatic.ValidPrefix(g, local), domatic.ValidPrefix(g, global)
			return sample{
				local: float64(lp), global: float64(gp),
				lSize: meanClassSize(local, lp), gSize: meanClassSize(global, gp),
			}
		})
		var locals, globals, lSizes, gSizes []float64
		for _, sm := range samples {
			locals = append(locals, sm.local)
			globals = append(globals, sm.global)
			lSizes = append(lSizes, sm.lSize)
			gSizes = append(gSizes, sm.gSize)
		}
		l := stats.Summarize(locals)
		gl := stats.Summarize(globals)
		ls := stats.Summarize(lSizes)
		gs := stats.Summarize(gSizes)
		saving := 0.0
		if ls.Mean > 0 {
			saving = gs.Mean / ls.Mean
		}
		t.AddRow(dep.name, f2(l.Mean), f2(gl.Mean), f2(ls.Mean), f2(gs.Mean), f2(saving))
	}
	t.Notes = append(t.Notes,
		"both variants sustain the same guaranteed prefix (bounded by the global δ), but the local δ² range",
		"spreads dense-region nodes over more classes, so each active slot wakes far fewer nodes —",
		"the per-slot energy saving reported in the last column. δ² is also computable in 1 round; δ is not.")
	return t
}

// meanClassSize returns the average size of the first `prefix` classes of p
// (0 if the prefix is empty).
func meanClassSize(p domatic.Partition, prefix int) float64 {
	if prefix == 0 {
		return 0
	}
	total := 0
	for _, class := range p[:prefix] {
		total += len(class)
	}
	return float64(total) / float64(prefix)
}
