package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Theorem 5.3 — general (non-uniform battery) approximation ratio",
		Run:   runE4,
	})
}

func e4Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{64, 256}
	}
	return []int{64, 256, 1024}
}

func runE4(cfg Config) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "Theorem 5.3 — general (non-uniform battery) approximation ratio",
		Header: []string{"n", "b_max", "UB (Lemma 5.1)", "lifetime", "ratio", "ratio/ln(b_max·n)"},
	}
	root := rng.New(cfg.Seed + 4)
	for _, n := range e4Sizes(cfg) {
		p := 10 * math.Log(float64(n)) / float64(n)
		if p > 1 {
			p = 1
		}
		for _, bMax := range []int{4, 16, 64} {
			type sample struct {
				ratio, lifetime, ub float64
				ok                  bool
			}
			srcs := root.SplitN(cfg.trials())
			samples := mapTrials(cfg, "E4", cfg.trials(), func(i int) sample {
				src := srcs[i]
				g := gen.GNP(n, p, src)
				b := make([]int, n)
				for j := range b {
					b[j] = 1 + src.Intn(bMax)
				}
				s := solve(solver.NameGeneral, g, b, 1, 30, src.Split())
				if s.Lifetime() == 0 {
					return sample{}
				}
				ub := core.GeneralUpperBound(g, b)
				return sample{
					ratio:    float64(ub) / float64(s.Lifetime()),
					lifetime: float64(s.Lifetime()),
					ub:       float64(ub),
					ok:       true,
				}
			})
			var ratios, lifetimes, ubs []float64
			for _, sm := range samples {
				if sm.ok {
					ratios = append(ratios, sm.ratio)
					lifetimes = append(lifetimes, sm.lifetime)
					ubs = append(ubs, sm.ub)
				}
			}
			if len(ratios) == 0 {
				continue
			}
			r := stats.Summarize(ratios)
			norm := math.Log(float64(bMax) * float64(n))
			t.AddRow(itoa(n), itoa(bMax),
				f2(stats.Summarize(ubs).Mean),
				f2(stats.Summarize(lifetimes).Mean),
				f2(r.Mean), f3(r.Mean/norm))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: ratio bounded by O(log(b_max·n)); the normalized column stays near a constant",
		"for b_max polynomial in n this reduces to the O(log n) of the uniform case (paper, Theorem 5.3)")
	return t
}
