package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sensim"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Theorem 6.2 — k-tolerant approximation ratio in both regimes",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Adversarial failure injection — k-tolerant schedules survive any budget < k",
		Run:   runE10,
	})
}

func runE5(cfg Config) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Theorem 6.2 — k-tolerant approximation ratio in both regimes",
		Header: []string{"regime", "n", "δ", "k", "UB=b(δ+1)/k", "lifetime", "ratio", "ratio/ln n"},
	}
	const b = 4
	root := rng.New(cfg.Seed + 5)
	n := 512
	if cfg.Quick {
		n = 128
	}
	// Dense regime: δ/ln n ≥ k — merged color classes carry the schedule.
	dense := gen.GNP(n, 18*math.Log(float64(n))/float64(n), root.Split())
	// Sparse regime: δ/ln n < k — the everyone-active phase carries it.
	sparse := gen.Grid(isqrt(n), isqrt(n))
	for _, reg := range []struct {
		name string
		g    *graph.Graph
	}{
		{"dense (δ/ln n ≥ k)", dense},
		{"sparse (δ/ln n < k)", sparse},
	} {
		g := reg.g
		for _, k := range []int{1, 2, 3, 4} {
			if g.MinDegree()+1 < k {
				continue // k-domination infeasible
			}
			srcs := root.SplitN(cfg.trials())
			lifetimesAll := mapTrials(cfg, "E5", cfg.trials(), func(i int) int {
				return solve(solver.NameFT, g, uniformBudgets(g.N(), b), k, 30, srcs[i]).Lifetime()
			})
			var ratios, lifetimes []float64
			ub := core.KTolerantUpperBound(g, b, k)
			for _, lt := range lifetimesAll {
				if lt == 0 {
					continue
				}
				ratios = append(ratios, float64(ub)/float64(lt))
				lifetimes = append(lifetimes, float64(lt))
			}
			if len(ratios) == 0 {
				continue
			}
			r := stats.Summarize(ratios)
			t.AddRow(reg.name, itoa(g.N()), itoa(g.MinDegree()), itoa(k),
				itoa(core.KTolerantUpperBound(g, b, k)),
				f2(stats.Summarize(lifetimes).Mean),
				f2(r.Mean), f3(r.Mean/math.Log(float64(g.N()))))
		}
	}
	t.Notes = append(t.Notes,
		"dense regime: ratio/ln n near constant (merged classes dominate the schedule)",
		"sparse regime: ratio bounded by 2(δ+1)/k + rounding — constant, below the ln n envelope (paper, proof of Thm 6.2)")
	return t
}

// isqrt returns ⌊√n⌋.
func isqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func runE10(cfg Config) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "Adversarial failure injection — k-tolerant schedules survive any budget < k",
		Header: []string{"schedule", "kill budget", "trials", "survived", "mean achieved/nominal"},
	}
	root := rng.New(cfg.Seed + 10)
	n := 400
	if cfg.Quick {
		n = 150
	}
	const b = 4
	const k = 3
	g := gen.GNP(n, 20*math.Log(float64(n))/float64(n), root.Split())
	// Victim: a minimum-degree node (the adversary's easiest target).
	victim := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) < g.Degree(victim) {
			victim = v
		}
	}
	trials := cfg.trials()
	type mk struct {
		name  string
		build func(src *rng.Source) *core.Schedule
	}
	schedules := []mk{
		{"greedy partition (1-dom)", func(src *rng.Source) *core.Schedule {
			p := domatic.GreedyPartition(g, domatic.GreedyExtractor)
			return core.FromPartition(p, b)
		}},
		{"Algorithm 3 (3-dom)", func(src *rng.Source) *core.Schedule {
			return solve(solver.NameFT, g, uniformBudgets(g.N(), b), k, 30, src)
		}},
	}
	for _, sched := range schedules {
		for _, budget := range []int{1, k - 1} {
			srcs := root.SplitN(trials)
			type sample struct {
				frac     float64
				survived bool
				ok       bool
			}
			samples := mapTrials(cfg, "E10", trials, func(i int) sample {
				s := sched.build(srcs[i])
				if s.Lifetime() == 0 {
					return sample{}
				}
				plan := sensim.AdversarialPlan(g, s, victim, budget)
				net := energy.NewNetwork(g, energy.Uniform(g, b))
				res := sensim.Run(net, s, sensim.Options{K: 1, Failures: plan})
				return sample{
					frac:     float64(res.AchievedLifetime) / float64(s.Lifetime()),
					survived: res.FirstViolation == -1,
					ok:       true,
				}
			})
			survived := 0
			var fracs []float64
			for _, sm := range samples {
				if !sm.ok {
					continue
				}
				fracs = append(fracs, sm.frac)
				if sm.survived {
					survived++
				}
			}
			if len(fracs) == 0 {
				continue
			}
			t.AddRow(sched.name, itoa(budget), itoa(len(fracs)),
				pct(float64(survived)/float64(len(fracs))),
				f2(stats.Summarize(fracs).Mean))
		}
	}
	t.Notes = append(t.Notes,
		"the adversary inspects the schedule and kills the victim's serving clusterheads in its weakest phase",
		"a 3-dominating schedule has no phase with < 3 servers: budgets 1 and 2 provably cannot break it",
		"the lifetime-maximal greedy partition has 1-server phases and falls to a single aimed crash")
	return t
}
