package experiments

import (
	"math"

	"repro/internal/chaos"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/reconfig"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E24",
		Title: "Live reconfiguration — overlap-planned transitions vs naive re-solve-and-swap under churn",
		Run:   runE24,
	})
}

// E24 measures the lifetime cost of live reconfiguration: a network whose
// topology keeps changing (nodes replaced, batteries swapped) while the
// schedule is running, under seeded crashes and a lossy wake-up channel.
// Three arms replay the identical churn script: overlap-planned transitions
// (internal/reconfig keeps the outgoing dominators awake for 2 or 1 slots
// across each cutover, charged to residual budgets) versus the naive
// re-solve-and-swap (overlap 0 — the new schedule is installed cold). The
// wake-loss model is what separates them: a sleeping survivor misses the
// install with probability WakeLoss, so naive swaps lose the first slots of
// every transition, while the overlap window keeps the old dominators
// covering exactly those slots.
//
// achieved is the lifetime (consecutive covered slots until the first
// violation) — the honest metric, since overlap energy shortens the tail:
// planned arms may cover fewer total slots yet sustain a much longer unbroken
// prefix.
func runE24(cfg Config) *Table {
	t := &Table{
		ID:    "E24",
		Title: "Live reconfiguration — overlap-planned transitions vs naive re-solve-and-swap under churn",
		Header: []string{"arm", "nominal", "achieved", "covered slots",
			"reconfigs", "degraded", "overlap energy", "energy", "deaths"},
	}
	root := rng.New(cfg.Seed + 24)
	n := 192
	crashes := 8
	if cfg.Quick {
		n, crashes = 96, 4
	}
	const b = 14
	g := gen.GNP(n, 8*math.Log(float64(n))/float64(n), root.Split())
	budgets := uniformBudgets(n, b)
	s := sched.Replan(g, budgets, 1, nil)
	horizon := s.Lifetime()

	// Forward the run's tracer into the simulator so reconfig and wake-miss
	// events land in the same stream as the trial markers. Trials run in
	// parallel, so serialize here once; mapTrials re-wraps the synchronized
	// tracer, which just nests the locks.
	simTrace := obs.Synchronized(cfg.Trace)
	cfg.Trace = simTrace

	type sample struct {
		nominal, achieved, covered    int
		reconfigs, degraded           int
		overlapEnergy, energy, deaths int
		ok                            bool
	}

	// One trial script — churn deltas at quarter points of the schedule plus
	// a seeded crash plan — is derived from the trial index alone, so every
	// arm of trial i replays it exactly.
	runArm := func(overlap, trial int) sample {
		if horizon < 4 {
			return sample{}
		}
		src := rng.New(cfg.Seed + 24 + uint64(trial)*1009)
		deltaSrc := src.Split()
		events := []reconfig.Change{
			{At: horizon / 4, Delta: churnDelta(n, b, deltaSrc)},
			{At: horizon / 2, Delta: churnDelta(n, b, deltaSrc)},
			{At: 3 * horizon / 4, Delta: churnDelta(n, b, deltaSrc)},
		}
		plan := chaos.Plan{Crashes: chaos.Crashes(g, crashes, horizon, src.Split()).Crashes}
		res, err := reconfig.Simulate(g, s, budgets, events, reconfig.SimOptions{
			K:        1,
			Overlap:  overlap,
			Seed:     cfg.Seed + 24 + uint64(trial),
			WakeLoss: 0.5,
			Chaos:    plan,
			Hooks:    obs.Hooks{Trace: simTrace},
		})
		if err != nil {
			panic("experiments: E24: " + err.Error())
		}
		return sample{
			nominal: horizon, achieved: res.AchievedLifetime, covered: res.CoveredSlots,
			reconfigs: res.Reconfigs, degraded: res.DegradedTransitions,
			overlapEnergy: res.OverlapEnergy, energy: res.EnergySpent,
			deaths: res.Deaths, ok: true,
		}
	}

	arms := []struct {
		name    string
		overlap int
	}{
		{"planned (overlap 2)", 2},
		{"planned (overlap 1)", 1},
		{"naive swap (overlap 0)", 0},
	}
	for _, a := range arms {
		samples := mapTrials(cfg, "E24", cfg.trials(), func(i int) sample {
			return runArm(a.overlap, i)
		})
		var achieved, covered, deaths []float64
		var reconfigs, degraded, overlapEnergy, energy, got int
		for _, sm := range samples {
			if !sm.ok {
				continue
			}
			got++
			achieved = append(achieved, float64(sm.achieved))
			covered = append(covered, float64(sm.covered))
			deaths = append(deaths, float64(sm.deaths))
			reconfigs += sm.reconfigs
			degraded += sm.degraded
			overlapEnergy += sm.overlapEnergy
			energy += sm.energy
		}
		if got == 0 {
			continue
		}
		t.AddRow(a.name,
			itoa(horizon),
			f2(stats.Summarize(achieved).Mean),
			f2(stats.Summarize(covered).Mean),
			itoa(reconfigs/got), itoa(degraded/got),
			itoa(overlapEnergy/got), itoa(energy/got),
			f2(stats.Summarize(deaths).Mean))
	}
	t.Notes = append(t.Notes,
		"all arms replay the identical churn script: node replacements + battery swaps at the nominal schedule's quarter points (later events only fire while a schedule is still running), plus seeded crashes",
		"a sleeping survivor misses each install with probability 0.5 (wake loss); nodes awake at cutover and freshly provisioned nodes always learn the new schedule",
		"achieved is the consecutive covered prefix (the lifetime definition); overlap energy is residual slots spent keeping outgoing dominators awake",
		"planned transitions trade tail coverage for an unbroken prefix — compare achieved, not covered slots")
	return t
}

// churnDelta is one step of the churn script: the highest-ID node is swapped
// out for a fresh unit (full battery, wired to three random survivors) and
// one random survivor gets a battery swap back to full. Node count is
// preserved, so successive deltas compose without ID bookkeeping.
func churnDelta(n, b int, src *rng.Source) graph.Delta {
	perm := src.Perm(n - 1)
	edges := make([][2]int, 3)
	for i, v := range perm[:3] {
		edges[i] = [2]int{v, n - 1}
	}
	return graph.Delta{
		RemoveNodes: []int{n - 1},
		AddNodes:    1,
		NewBudgets:  []int{b},
		AddEdges:    edges,
		SetBudgets:  []graph.BudgetUpdate{{Node: perm[3], Budget: b}},
	}
}
