package experiments

import (
	"math"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/sensim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Abstraction gap — the paper's duty-budget model vs battery-drain reality",
		Run:   runE18,
	})
}

func runE18(cfg Config) *Table {
	t := &Table{
		ID:     "E18",
		Title:  "Abstraction gap — the paper's duty-budget model vs battery-drain reality",
		Header: []string{"configuration", "tx cost", "nominal lifetime", "achieved", "achieved/nominal", "deaths"},
	}
	root := rng.New(cfg.Seed + 18)
	n := 300
	if cfg.Quick {
		n = 120
	}
	const b = 4           // duty budget in the paper's model
	const activeCost = 20 // battery units per active slot
	// Each configuration pairs an overhead model with a battery reserve
	// margin: battery = activeCost·b·(1+margin). The paper prescribes
	// exactly this reserve ("b_v will be set to a value strictly smaller
	// than the total available energy", §2); the sweep shows how much
	// reserve the overheads actually demand.
	models := []struct {
		name   string
		model  sensim.Model
		margin float64
	}{
		{"0% (paper model)", sensim.Model{ActiveCost: activeCost}, 0},
		{"5% sleep, no reserve", sensim.Model{ActiveCost: activeCost, SleepCost: 1}, 0},
		{"5% sleep, 2x reserve", sensim.Model{ActiveCost: activeCost, SleepCost: 1}, 2},
		{"5% sleep, 5x reserve", sensim.Model{ActiveCost: activeCost, SleepCost: 1}, 5},
		{"5% sleep + tx, 5x reserve", sensim.Model{ActiveCost: activeCost, SleepCost: 1, TxCost: 2}, 5},
	}
	for _, mc := range models {
		srcs := root.SplitN(cfg.trials())
		type sample struct {
			nominal, achieved, deaths float64
			ok                        bool
		}
		samples := mapTrials(cfg, "E18", cfg.trials(), func(i int) sample {
			src := srcs[i]
			side := math.Sqrt(float64(n))
			radius := math.Sqrt(16 * math.Log(float64(n)) / math.Pi)
			g, _ := gen.RandomUDG(n, side, radius, src)
			if !g.Connected() {
				return sample{}
			}
			// The long greedy-partition schedule: the regime where idle
			// drain hurts, because every node sleeps through most classes.
			p := domatic.GreedyPartition(g, domatic.GreedyExtractor)
			s := core.FromPartition(p, b)
			if s.Lifetime() == 0 {
				return sample{}
			}
			batteries := make([]int, g.N())
			for j := range batteries {
				batteries[j] = int(float64(activeCost*b) * (1 + mc.margin))
			}
			tree, err := agg.NewBFSTree(g, 0)
			if err != nil {
				return sample{}
			}
			res := sensim.RunRealistic(g, s, batteries, mc.model, tree)
			return sample{
				nominal:  float64(s.Lifetime()),
				achieved: float64(res.AchievedLifetime),
				deaths:   float64(res.Deaths),
				ok:       true,
			}
		})
		var nominal, achieved, fracs, deaths []float64
		for _, sm := range samples {
			if sm.ok {
				nominal = append(nominal, sm.nominal)
				achieved = append(achieved, sm.achieved)
				fracs = append(fracs, sm.achieved/sm.nominal)
				deaths = append(deaths, sm.deaths)
			}
		}
		if len(nominal) == 0 {
			continue
		}
		t.AddRow(mc.name, itoa(mc.model.TxCost),
			f2(stats.Summarize(nominal).Mean),
			f2(stats.Summarize(achieved).Mean),
			f2(stats.Summarize(fracs).Mean),
			f2(stats.Summarize(deaths).Mean))
	}
	t.Notes = append(t.Notes,
		"with zero idle drain the duty-budget abstraction is exact: achieved = nominal",
		"without a battery reserve, even 5% idle drain collapses long schedules (sleep slots dominate)",
		"the paper's prescription (§2: set b_v strictly below the battery) works: with enough reserve the",
		"abstraction becomes accurate again, and the reserve size needed is ≈ sleep-rate × schedule length")
	return t
}
