package viz

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/rng"
)

func TestWriteSVGBasics(t *testing.T) {
	g, pts := gen.RandomUDG(30, 5, 1.5, rng.New(1))
	var sb strings.Builder
	err := WriteSVG(&sb, g, pts, Options{Highlight: []int{0, 1}, Title: "demo <udg>"})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(out, "<circle") != 30 {
		t.Fatalf("expected 30 circles, got %d", strings.Count(out, "<circle"))
	}
	if strings.Count(out, "<line") != g.M() {
		t.Fatalf("expected %d lines, got %d", g.M(), strings.Count(out, "<line"))
	}
	if !strings.Contains(out, "#d94a4a") {
		t.Fatal("highlight color missing")
	}
	if !strings.Contains(out, "demo &lt;udg&gt;") {
		t.Fatal("title not escaped")
	}
}

func TestWriteSVGSizeMismatch(t *testing.T) {
	g, _ := gen.RandomUDG(5, 3, 1, rng.New(2))
	if err := WriteSVG(&strings.Builder{}, g, []geom.Point{{X: 0, Y: 0}}, Options{}); err == nil {
		t.Fatal("point count mismatch accepted")
	}
}

func TestWriteSVGDegeneratePoints(t *testing.T) {
	// All points identical: bounds collapse; must not divide by zero.
	g, _ := gen.RandomUDG(3, 1, 1, rng.New(3))
	pts := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}
	var sb strings.Builder
	if err := WriteSVG(&sb, g, pts, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Fatal("no SVG output")
	}
}
