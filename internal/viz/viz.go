// Package viz renders unit-disk deployments and schedules as standalone SVG
// files using only the standard library — visual artifacts a downstream user
// can open in a browser: node positions, communication edges, and the
// dominating set of a chosen slot highlighted.
package viz

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Options controls the rendering.
type Options struct {
	// Width is the SVG canvas width in pixels (height scales with the
	// deployment's aspect ratio). Zero means 640.
	Width int
	// NodeRadius is the dot radius in pixels. Zero means 4.
	NodeRadius int
	// Highlight marks a node set (e.g. the active dominating set).
	Highlight []int
	// Title is an optional caption.
	Title string
}

// WriteSVG renders the deployment. pts must align with g's node IDs.
func WriteSVG(w io.Writer, g *graph.Graph, pts []geom.Point, opt Options) error {
	if len(pts) != g.N() {
		return fmt.Errorf("viz: %d points for %d nodes", len(pts), g.N())
	}
	if opt.Width <= 0 {
		opt.Width = 640
	}
	if opt.NodeRadius <= 0 {
		opt.NodeRadius = 4
	}

	minX, minY, maxX, maxY := bounds(pts)
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	const margin = 16
	scale := float64(opt.Width-2*margin) / spanX
	height := int(spanY*scale) + 2*margin
	px := func(p geom.Point) (float64, float64) {
		return margin + (p.X-minX)*scale, margin + (p.Y-minY)*scale
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opt.Width, height, opt.Width, height)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	if opt.Title != "" {
		fmt.Fprintf(bw, `<text x="%d" y="12" font-family="monospace" font-size="11">%s</text>`+"\n",
			margin, escape(opt.Title))
	}

	var werr error
	g.Edges(func(u, v int) {
		if werr != nil {
			return
		}
		x1, y1 := px(pts[u])
		x2, y2 := px(pts[v])
		_, werr = fmt.Fprintf(bw,
			`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc" stroke-width="0.6"/>`+"\n",
			x1, y1, x2, y2)
	})
	if werr != nil {
		return werr
	}

	marked := make(map[int]bool, len(opt.Highlight))
	for _, v := range opt.Highlight {
		marked[v] = true
	}
	for v, p := range pts {
		x, y := px(p)
		fill, r := "#4a90d9", opt.NodeRadius
		if marked[v] {
			fill, r = "#d94a4a", opt.NodeRadius+2
		}
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%d" fill="%s"/>`+"\n", x, y, r, fill)
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

func bounds(pts []geom.Point) (minX, minY, maxX, maxY float64) {
	if len(pts) == 0 {
		return 0, 0, 1, 1
	}
	minX, minY = pts[0].X, pts[0].Y
	maxX, maxY = pts[0].X, pts[0].Y
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return minX, minY, maxX, maxY
}

func escape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
