package chaos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestWorkerFaultZeroValueInjectsNothing(t *testing.T) {
	var f WorkerFault
	for i := 0; i < 100; i++ {
		if err := f.Invoke("job"); err != nil {
			t.Fatalf("zero-value fault injected: %v", err)
		}
	}
	var nilFault *WorkerFault
	if err := nilFault.Invoke("job"); err != nil {
		t.Fatalf("nil fault injected: %v", err)
	}
}

func TestWorkerFaultFailRate(t *testing.T) {
	f := NewWorkerFault(0, 0.3, 0, rng.New(7))
	failures := 0
	for i := 0; i < 1000; i++ {
		if err := f.Invoke("job"); err != nil {
			if !errors.Is(err, ErrWorkerFault) {
				t.Fatalf("failure is not ErrWorkerFault: %v", err)
			}
			failures++
		}
	}
	if failures != f.Failed() {
		t.Fatalf("Failed() = %d, observed %d", f.Failed(), failures)
	}
	if failures < 200 || failures > 400 {
		t.Fatalf("failure rate %d/1000 far from configured 0.3", failures)
	}
}

func TestWorkerFaultDeterministic(t *testing.T) {
	run := func() []bool {
		f := NewWorkerFault(0.5, 0.2, 0, rng.New(42))
		out := make([]bool, 200)
		for i := range out {
			out[i] = f.Invoke("job") != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("invocation %d diverged across identical seeds", i)
		}
	}
}

func TestParseWorkerFault(t *testing.T) {
	f, err := ParseWorkerFault("slow=0.25:50ms,fail=0.1", rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if f.slowP != 0.25 || f.failP != 0.1 || f.delay != 50*time.Millisecond {
		t.Fatalf("parsed %v/%v/%v", f.slowP, f.failP, f.delay)
	}
	if f, err := ParseWorkerFault("", rng.New(1)); err != nil || f != nil {
		t.Fatalf("empty spec: %v, %v", f, err)
	}
	for _, bad := range []string{
		"slow=0.5", "slow=2:1ms", "slow=0.5:-1ms", "slow=0.5:xyz",
		"fail=1.5", "fail=x", "frob=1", "slow",
	} {
		if _, err := ParseWorkerFault(bad, rng.New(1)); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
