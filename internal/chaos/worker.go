package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// ErrWorkerFault is the error an injected worker failure surfaces. The
// serving layer maps it to a 500 and counts it separately from genuine
// solver errors, so service tests can assert the failure path precisely.
var ErrWorkerFault = errors.New("chaos: injected worker fault")

// WorkerFault models a degraded service worker — the serving-layer member of
// the fault family (crashes and leaks hit the network, radios hit the
// messages, WorkerFault hits the machine doing the computing). Each Invoke
// independently sleeps with probability SlowP (for Delay) and fails with
// probability FailP, drawn from a seeded source so a flaky-worker scenario
// replays exactly. It satisfies the FaultInjector hook of internal/serve.
//
// The zero value injects nothing. All methods are safe for concurrent use.
type WorkerFault struct {
	mu     sync.Mutex
	src    *rng.Source
	slowP  float64
	failP  float64
	delay  time.Duration
	slowed int
	failed int
}

// NewWorkerFault builds a seeded worker fault: each invocation sleeps delay
// with probability slowP and fails with probability failP. Probabilities
// outside [0, 1] and negative delays panic — a fault plan is configuration,
// not runtime input.
func NewWorkerFault(slowP, failP float64, delay time.Duration, src *rng.Source) *WorkerFault {
	if slowP < 0 || slowP > 1 || failP < 0 || failP > 1 {
		panic(fmt.Sprintf("chaos: worker fault probabilities (%v, %v) out of [0, 1]", slowP, failP))
	}
	if delay < 0 {
		panic(fmt.Sprintf("chaos: negative worker delay %v", delay))
	}
	if (slowP > 0 || failP > 0) && src == nil {
		panic("chaos: worker fault with positive probability needs a randomness source")
	}
	return &WorkerFault{src: src, slowP: slowP, failP: failP, delay: delay}
}

// Invoke applies the fault once, keyed by the job about to run (the key is
// accepted for symmetry with other injectors and for logging wrappers; the
// coin flips do not depend on it). It sleeps outside the lock so concurrent
// workers degrade independently.
func (f *WorkerFault) Invoke(key string) error {
	if f == nil || (f.slowP == 0 && f.failP == 0) {
		return nil
	}
	f.mu.Lock()
	slow := f.slowP > 0 && f.src.Float64() < f.slowP
	fail := f.failP > 0 && f.src.Float64() < f.failP
	if slow {
		f.slowed++
	}
	if fail {
		f.failed++
	}
	delay := f.delay
	f.mu.Unlock()
	if slow && delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return fmt.Errorf("%w (job %s)", ErrWorkerFault, key)
	}
	return nil
}

// Slowed returns how many invocations were slowed so far.
func (f *WorkerFault) Slowed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slowed
}

// Failed returns how many invocations were failed so far.
func (f *WorkerFault) Failed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// ParseWorkerFault builds a WorkerFault from a compact directive string, the
// format behind ltserve's -fault flag:
//
//	slow=P:DUR   each invocation sleeps DUR (Go duration) with probability P
//	fail=P       each invocation fails with probability P
//
// Example: "slow=0.2:50ms,fail=0.05". An empty spec returns nil (no fault).
func ParseWorkerFault(spec string, src *rng.Source) (*WorkerFault, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var slowP, failP float64
	var delay time.Duration
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: worker-fault directive %q is not key=value", field)
		}
		switch key {
		case "slow":
			pStr, dStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("chaos: slow=%s: want P:DUR", val)
			}
			p, err := strconv.ParseFloat(pStr, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("chaos: slow=%s: want probability in [0, 1]", val)
			}
			d, err := time.ParseDuration(dStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("chaos: slow=%s: bad duration %q", val, dStr)
			}
			slowP, delay = p, d
		case "fail":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("chaos: fail=%s: want probability in [0, 1]", val)
			}
			failP = p
		default:
			return nil, fmt.Errorf("chaos: unknown worker-fault directive %q (have slow, fail)", key)
		}
	}
	return NewWorkerFault(slowP, failP, delay, src), nil
}
