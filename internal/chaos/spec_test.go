package chaos

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

// TestParseSpecRejectsMalformed walks every error branch of the spec
// language and asserts both that the directive is rejected and that the
// message names what was wrong — the actionable-error contract of the trust
// boundary.
func TestParseSpecRejectsMalformed(t *testing.T) {
	g := gen.Path(6)
	cases := []struct {
		name string
		spec string
		want string
	}{
		{"missing equals", "crash", "is not key=value"},
		{"unknown directive", "frob=1", `unknown directive "frob"`},

		{"crash empty", "crash=", "empty count"},
		{"crash non-integer", "crash=x", "is not an integer"},
		{"crash float", "crash=1.5", "is not an integer"},
		{"crash negative", "crash=-1", "is negative"},

		{"blackout no separator", "blackout=3", "missing 'x' separator"},
		{"blackout empty left", "blackout=x3", "empty count"},
		{"blackout empty right", "blackout=3x", "empty count"},
		{"blackout negative left", "blackout=-1x3", "is negative"},
		{"blackout negative right", "blackout=3x-1", "is negative"},
		{"blackout garbage", "blackout=axb", "is not an integer"},

		{"leak no separator", "leak=2", "missing 'x' separator"},
		{"leak negative amount", "leak=2x-3", "is negative"},

		{"loss empty", "loss=", "probability in [0, 1)"},
		{"loss garbage", "loss=abc", "probability in [0, 1)"},
		{"loss negative", "loss=-0.1", "probability in [0, 1)"},
		{"loss one", "loss=1", "probability in [0, 1)"},
		{"loss above one", "loss=1.5", "probability in [0, 1)"},
		{"loss NaN", "loss=NaN", "probability in [0, 1)"},
		{"loss Inf", "loss=Inf", "probability in [0, 1)"},
		{"loss negative Inf", "loss=-Inf", "probability in [0, 1)"},

		{"burst no colon", "burst=0.9", "want PBAD:PBG"},
		{"burst bad garbage", "burst=a:0.5", "bad-state loss"},
		{"burst bad one", "burst=1:0.5", "bad-state loss"},
		{"burst bad NaN", "burst=NaN:0.5", "bad-state loss"},
		{"burst bg garbage", "burst=0.9:b", "bad→good probability"},
		{"burst bg zero", "burst=0.9:0", "bad→good probability"},
		{"burst bg above one", "burst=0.9:1.5", "bad→good probability"},
		{"burst bg NaN", "burst=0.9:NaN", "bad→good probability"},

		{"later directive bad", "crash=2,loss=NaN", "probability in [0, 1)"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec, g, 10, rng.New(1))
		if err == nil {
			t.Errorf("%s: spec %q accepted", tc.name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestParseSpecRejectsBadArguments(t *testing.T) {
	g := gen.Path(4)
	if _, err := ParseSpec("crash=1", nil, 10, rng.New(1)); err == nil || !strings.Contains(err.Error(), "nil graph") {
		t.Errorf("nil graph: err = %v", err)
	}
	if _, err := ParseSpec("crash=1", g, 10, nil); err == nil || !strings.Contains(err.Error(), "nil random source") {
		t.Errorf("nil source: err = %v", err)
	}
	if _, err := ParseSpec("crash=1", g, -1, rng.New(1)); err == nil || !strings.Contains(err.Error(), "horizon -1") {
		t.Errorf("negative horizon: err = %v", err)
	}
	// The empty spec never touches graph or source — a no-chaos default must
	// not demand arguments it will not use.
	if _, err := ParseSpec("  ", nil, -1, nil); err != nil {
		t.Errorf("blank spec: err = %v", err)
	}
}

func TestParseSpecAcceptsBoundaryValues(t *testing.T) {
	g := gen.Path(6)
	for _, spec := range []string{
		"crash=0", "blackout=0x0", "leak=0x0", "loss=0", "burst=0:1",
		"loss=0.999", "burst=0.999:0.001",
	} {
		if _, err := ParseSpec(spec, g, 10, rng.New(1)); err != nil {
			t.Errorf("boundary spec %q rejected: %v", spec, err)
		}
	}
}

func TestParseSpecAccumulatesAndReplaces(t *testing.T) {
	g := gen.GNP(30, 0.2, rng.New(3))
	plan, err := ParseSpec("crash=2,crash=3,leak=1x2,leak=2x2,loss=0.1,burst=0.5:0.5", g, 20, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Crashes) != 5 {
		t.Errorf("repeated crash directives must accumulate: got %d crashes, want 5", len(plan.Crashes))
	}
	if len(plan.Leaks) != 3 {
		t.Errorf("repeated leak directives must accumulate: got %d leaks, want 3", len(plan.Leaks))
	}
	if _, ok := plan.Radio.(*GilbertElliott); !ok {
		t.Errorf("later radio directive must replace the earlier one, got %T", plan.Radio)
	}
}
