package chaos

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/rng"
)

// ParseSpec builds a Plan from a compact comma-separated directive string,
// the format behind ltsim's -chaos flag. Directives:
//
//	crash=N          N random node crashes in [0, horizon)
//	blackout=RxM     R regional blackouts, up to M crashes per neighborhood
//	leak=NxA         N battery-leak spikes of up to A units each
//	loss=P           flat radio loss with probability P in [0, 1)
//	burst=PBAD:PBG   Gilbert–Elliott radio: bad-state loss PBAD, bad→good
//	                 probability PBG (good state is lossless, good→bad 0.05)
//
// Example: "crash=10,blackout=2x3,leak=5x2,loss=0.15". Directives may repeat;
// repeated crash/leak directives accumulate, a later radio replaces an
// earlier one. All randomness is drawn from src, so a spec plus a seed is a
// complete, reproducible chaos scenario.
//
// ParseSpec is a trust boundary (its input arrives from command lines and
// service requests), so every malformed directive — including NaN/Inf rates,
// which ParseFloat happily accepts — is rejected with an error naming the
// offending directive and the expected form.
func ParseSpec(spec string, g *graph.Graph, horizon int, src *rng.Source) (Plan, error) {
	var out Plan
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	if g == nil {
		return Plan{}, fmt.Errorf("chaos: nil graph")
	}
	if src == nil {
		return Plan{}, fmt.Errorf("chaos: nil random source")
	}
	if horizon < 0 {
		return Plan{}, fmt.Errorf("chaos: horizon %d must be >= 0", horizon)
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("chaos: directive %q is not key=value", field)
		}
		switch key {
		case "crash":
			n, err := parseCount(val)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: crash=%s: %v (want crash=N, a non-negative crash count)", val, err)
			}
			out = Merge(out, Crashes(g, n, horizon, src.Split()))
		case "blackout":
			r, m, err := parsePair(val)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: blackout=%s: %v (want blackout=RxM: R regions, up to M crashes each)", val, err)
			}
			out = Merge(out, Blackouts(g, r, m, horizon, src.Split()))
		case "leak":
			n, a, err := parsePair(val)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: leak=%s: %v (want leak=NxA: N spikes of up to A units)", val, err)
			}
			out = Merge(out, LeakSpikes(g, n, a, horizon, src.Split()))
		case "loss":
			p, err := parseProb(val)
			if err != nil || p >= 1 {
				return Plan{}, fmt.Errorf("chaos: loss=%s: want a probability in [0, 1)", val)
			}
			out = Merge(out, FlatLoss(p, src.Split()))
		case "burst":
			badStr, bgStr, ok := strings.Cut(val, ":")
			if !ok {
				return Plan{}, fmt.Errorf("chaos: burst=%s: want PBAD:PBG (bad-state loss and bad→good probability)", val)
			}
			pBad, err := parseProb(badStr)
			if err != nil || pBad >= 1 {
				return Plan{}, fmt.Errorf("chaos: burst=%s: bad-state loss %q: want a probability in [0, 1)", val, badStr)
			}
			pBG, err := parseProb(bgStr)
			if err != nil || pBG <= 0 || pBG > 1 {
				return Plan{}, fmt.Errorf("chaos: burst=%s: bad→good probability %q: want a probability in (0, 1]", val, bgStr)
			}
			out = Merge(out, BurstyLoss(0, pBad, 0.05, pBG, src.Split()))
		default:
			return Plan{}, fmt.Errorf("chaos: unknown directive %q (have crash, blackout, leak, loss, burst)", key)
		}
	}
	return out, nil
}

func parseCount(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty count")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%q is not an integer", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("count %d is negative", n)
	}
	return n, nil
}

// parseProb parses a finite probability in [0, 1]. ParseFloat accepts "NaN",
// "Inf", and friends, and NaN in particular slips through naive p < 0 range
// checks (every comparison with NaN is false) — so finiteness is checked
// explicitly here, once, for every rate in the spec language.
func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a number", s)
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return 0, fmt.Errorf("%q is not finite", s)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("%v outside [0, 1]", p)
	}
	return p, nil
}

func parsePair(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("missing 'x' separator")
	}
	n, err := parseCount(a)
	if err != nil {
		return 0, 0, err
	}
	m, err := parseCount(b)
	if err != nil {
		return 0, 0, err
	}
	return n, m, nil
}
