package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/rng"
)

// ParseSpec builds a Plan from a compact comma-separated directive string,
// the format behind ltsim's -chaos flag. Directives:
//
//	crash=N          N random node crashes in [0, horizon)
//	blackout=RxM     R regional blackouts, up to M crashes per neighborhood
//	leak=NxA         N battery-leak spikes of up to A units each
//	loss=P           flat radio loss with probability P in [0, 1)
//	burst=PBAD:PBG   Gilbert–Elliott radio: bad-state loss PBAD, bad→good
//	                 probability PBG (good state is lossless, good→bad 0.05)
//
// Example: "crash=10,blackout=2x3,leak=5x2,loss=0.15". Directives may repeat;
// repeated crash/leak directives accumulate, a later radio replaces an
// earlier one. All randomness is drawn from src, so a spec plus a seed is a
// complete, reproducible chaos scenario.
func ParseSpec(spec string, g *graph.Graph, horizon int, src *rng.Source) (Plan, error) {
	var out Plan
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("chaos: directive %q is not key=value", field)
		}
		switch key {
		case "crash":
			n, err := parseCount(val)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: crash=%s: %v", val, err)
			}
			out = Merge(out, Crashes(g, n, horizon, src.Split()))
		case "blackout":
			r, m, err := parsePair(val)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: blackout=%s: %v", val, err)
			}
			out = Merge(out, Blackouts(g, r, m, horizon, src.Split()))
		case "leak":
			n, a, err := parsePair(val)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: leak=%s: %v", val, err)
			}
			out = Merge(out, LeakSpikes(g, n, a, horizon, src.Split()))
		case "loss":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p >= 1 {
				return Plan{}, fmt.Errorf("chaos: loss=%s: want probability in [0, 1)", val)
			}
			out = Merge(out, FlatLoss(p, src.Split()))
		case "burst":
			badStr, bgStr, ok := strings.Cut(val, ":")
			if !ok {
				return Plan{}, fmt.Errorf("chaos: burst=%s: want PBAD:PBG", val)
			}
			pBad, err1 := strconv.ParseFloat(badStr, 64)
			pBG, err2 := strconv.ParseFloat(bgStr, 64)
			if err1 != nil || err2 != nil || pBad < 0 || pBad >= 1 || pBG <= 0 || pBG > 1 {
				return Plan{}, fmt.Errorf("chaos: burst=%s: want PBAD in [0,1) and PBG in (0,1]", val)
			}
			out = Merge(out, BurstyLoss(0, pBad, 0.05, pBG, src.Split()))
		default:
			return Plan{}, fmt.Errorf("chaos: unknown directive %q (have crash, blackout, leak, loss, burst)", key)
		}
	}
	return out, nil
}

func parseCount(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("not an integer")
	}
	if n < 0 {
		return 0, fmt.Errorf("negative count")
	}
	return n, nil
}

func parsePair(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("want NxM")
	}
	n, err := parseCount(a)
	if err != nil {
		return 0, 0, err
	}
	m, err := parseCount(b)
	if err != nil {
		return 0, 0, err
	}
	return n, m, nil
}
