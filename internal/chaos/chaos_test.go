package chaos

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestInjectorAppliesCrashesAndLeaks(t *testing.T) {
	g := gen.Path(5)
	plan := Merge(
		Plan{Crashes: energy.FailurePlan{{Time: 1, Node: 2}, {Time: 3, Node: 4}}},
		Plan{Leaks: []Leak{{Time: 0, Node: 0, Amount: 2}, {Time: 2, Node: 1, Amount: 99}}},
	)
	net := energy.NewNetwork(g, energy.Uniform(g, 3))
	in := plan.Injector()

	if d := in.Inject(net, 0); d != 0 {
		t.Fatalf("slot 0: %d deaths, want 0", d)
	}
	if net.Residual[0] != 1 {
		t.Fatalf("slot 0: node 0 residual %d, want 1 (leak of 2)", net.Residual[0])
	}
	if d := in.Inject(net, 1); d != 1 || net.Alive[2] {
		t.Fatalf("slot 1: want node 2 dead, 1 death; got deaths=%d alive=%v", d, net.Alive[2])
	}
	if d := in.Inject(net, 2); d != 0 {
		t.Fatalf("slot 2: %d deaths, want 0", d)
	}
	if net.Residual[1] != 0 {
		t.Fatalf("slot 2: leak must clamp at 0, residual %d", net.Residual[1])
	}
	if d := in.Inject(net, 3); d != 1 || net.Alive[4] {
		t.Fatalf("slot 3: want node 4 dead")
	}
}

func TestInjectorCountsOnlyAliveKills(t *testing.T) {
	g := gen.Path(3)
	plan := Plan{Crashes: energy.FailurePlan{{Time: 0, Node: 1}, {Time: 0, Node: 1}}}
	net := energy.NewNetwork(g, energy.Uniform(g, 1))
	if d := plan.Injector().Inject(net, 0); d != 1 {
		t.Fatalf("double-kill counted %d deaths, want 1", d)
	}
}

func TestMergeSortsAndComposes(t *testing.T) {
	a := Plan{Crashes: energy.FailurePlan{{Time: 5, Node: 1}}}
	b := Plan{Crashes: energy.FailurePlan{{Time: 2, Node: 0}}, Leaks: []Leak{{Time: 9, Node: 0, Amount: 1}, {Time: 1, Node: 2, Amount: 1}}}
	c := FlatLoss(0.5, rng.New(1))
	m := Merge(a, b, c)
	if len(m.Crashes) != 2 || m.Crashes[0].Time != 2 || m.Crashes[1].Time != 5 {
		t.Fatalf("crashes not merged/sorted: %+v", m.Crashes)
	}
	if len(m.Leaks) != 2 || m.Leaks[0].Time != 1 {
		t.Fatalf("leaks not sorted: %+v", m.Leaks)
	}
	if m.Radio == nil {
		t.Fatal("radio lost in merge")
	}
}

func TestFlatLossRate(t *testing.T) {
	r := FlatLoss(0.3, rng.New(7)).Radio
	dropped := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if r.Drop(0, 1, i) {
			dropped++
		}
	}
	got := float64(dropped) / trials
	if got < 0.27 || got > 0.33 {
		t.Fatalf("flat loss rate %.3f far from 0.3", got)
	}
}

func TestGilbertElliottIsBursty(t *testing.T) {
	// Good state lossless, bad state always drops, slow transitions: losses
	// must arrive in runs, so consecutive outcomes correlate far more than
	// an independent process with the same marginal rate.
	r := BurstyLoss(0, 1, 0.05, 0.2, rng.New(3)).Radio
	const n = 30000
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = r.Drop(0, 1, i)
	}
	same := 0
	for i := 1; i < n; i++ {
		if out[i] == out[i-1] {
			same++
		}
	}
	if frac := float64(same) / float64(n-1); frac < 0.8 {
		t.Fatalf("consecutive-agreement %.3f: losses not bursty", frac)
	}
}

func TestGilbertElliottPerLinkState(t *testing.T) {
	ge := BurstyLoss(0, 1, 0.5, 0.5, rng.New(4)).Radio.(*GilbertElliott)
	for i := 0; i < 100; i++ {
		ge.Drop(0, 1, i)
		ge.Drop(1, 0, i)
	}
	if len(ge.links) != 2 {
		t.Fatalf("expected independent state per directed link, have %d entries", len(ge.links))
	}
}

func TestParseSpec(t *testing.T) {
	g := gen.GNP(40, 0.2, rng.New(1))
	plan, err := ParseSpec("crash=5, blackout=2x2, leak=3x2, loss=0.1", g, 20, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Crashes) < 5 {
		t.Fatalf("expected >= 5 crashes, got %d", len(plan.Crashes))
	}
	if len(plan.Leaks) != 3 {
		t.Fatalf("expected 3 leaks, got %d", len(plan.Leaks))
	}
	if plan.Radio == nil {
		t.Fatal("loss directive produced no radio")
	}
	for i := 1; i < len(plan.Crashes); i++ {
		if plan.Crashes[i].Time < plan.Crashes[i-1].Time {
			t.Fatal("merged crash plan not time-sorted")
		}
	}
	if p, err := ParseSpec("", g, 20, rng.New(9)); err != nil || p.CrashCount() != 0 {
		t.Fatalf("empty spec must be the empty plan, got %+v, %v", p, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	g := gen.Path(4)
	for _, bad := range []string{
		"crash", "crash=x", "crash=-1", "blackout=3", "leak=2", "loss=1.5",
		"burst=0.9", "frob=1",
	} {
		if _, err := ParseSpec(bad, g, 10, rng.New(1)); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestSpecDeterminism(t *testing.T) {
	g := gen.GNP(60, 0.15, rng.New(2))
	a, err := ParseSpec("crash=8,leak=4x3", g, 30, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParseSpec("crash=8,leak=4x3", g, 30, rng.New(5))
	if len(a.Crashes) != len(b.Crashes) || len(a.Leaks) != len(b.Leaks) {
		t.Fatal("same spec+seed produced different plans")
	}
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			t.Fatal("crash plans diverge")
		}
	}
	for i := range a.Leaks {
		if a.Leaks[i] != b.Leaks[i] {
			t.Fatal("leak plans diverge")
		}
	}
}
