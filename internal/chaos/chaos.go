// Package chaos is the unified fault-injection framework: it generalizes the
// ad-hoc failure knobs that grew around the simulators (energy.FailurePlan
// crash lists, distsim's flat radio loss rate) into composable, seeded
// fault plans that every layer consumes through one description.
//
// A Plan bundles three fault classes:
//
//   - node crashes (including regional blackouts that wipe a closed
//     neighborhood — the adversarial pattern k-tolerance defends against),
//   - battery-leak spikes that silently drain residual duty budget, and
//   - an unreliable-radio model (flat independent loss or bursty
//     Gilbert–Elliott loss) for the message-passing layer.
//
// Plans are pure descriptions: building one performs no mutation, and the
// same Plan can drive several executions. The energy/sensor layers consume a
// Plan through Injector (per-slot application, satisfying sensim.Injector);
// the message layer consumes Plan.Radio (satisfying distsim.Radio). All
// randomness flows through rng.Source seeds, so a chaos scenario is exactly
// reproducible — the property the self-healing experiments (E23) rely on to
// subject both arms of a comparison to the identical fault sequence.
package chaos

import (
	"sort"

	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Leak is a battery-leak spike: at the start of slot Time, node Node loses
// Amount units of residual duty budget (clamped at zero). Leaks model
// self-discharge, firmware bugs, or cold snaps — energy loss without death.
type Leak struct {
	Time   int
	Node   int
	Amount int
}

// Radio is the message-loss model of a plan. It matches distsim.Radio
// structurally, so a chaos radio plugs straight into distsim.Options.Radio
// without this package importing the simulator.
type Radio interface {
	Drop(from, to, round int) bool
}

// Plan is a composable, seeded fault plan. The zero value injects nothing.
type Plan struct {
	Crashes energy.FailurePlan // time-ordered node crashes
	Leaks   []Leak             // time-ordered battery-leak spikes
	Radio   Radio              // message-loss model (nil = reliable medium)
}

// Merge combines plans into one: crashes and leaks are concatenated and
// re-sorted by time; the last non-nil radio wins.
func Merge(plans ...Plan) Plan {
	var out Plan
	for _, p := range plans {
		out.Crashes = append(out.Crashes, p.Crashes...)
		out.Leaks = append(out.Leaks, p.Leaks...)
		if p.Radio != nil {
			out.Radio = p.Radio
		}
	}
	out.Crashes.Sort()
	sortLeaks(out.Leaks)
	return out
}

func sortLeaks(leaks []Leak) {
	sort.SliceStable(leaks, func(i, j int) bool {
		if leaks[i].Time != leaks[j].Time {
			return leaks[i].Time < leaks[j].Time
		}
		return leaks[i].Node < leaks[j].Node
	})
}

// CrashCount returns the number of crashes in the plan.
func (p Plan) CrashCount() int { return len(p.Crashes) }

// Crashes draws a plan killing count distinct random nodes at uniform times
// in [0, horizon) — the classic random-failure workload.
func Crashes(g *graph.Graph, count, horizon int, src *rng.Source) Plan {
	return Plan{Crashes: energy.RandomFailures(g, count, horizon, src)}
}

// Blackouts draws a plan of regional failures: for each of `regions` random
// closed neighborhoods, up to perRegion of its members crash at uniform
// times in [0, horizon). This is energy.NeighborhoodFailures promoted into
// the unified framework — the pattern that separates k-tolerant schedules
// from plain ones.
func Blackouts(g *graph.Graph, regions, perRegion, horizon int, src *rng.Source) Plan {
	return Plan{Crashes: energy.NeighborhoodFailures(g, regions, perRegion, horizon, src)}
}

// LeakSpikes draws a plan of count battery-leak spikes on random nodes at
// uniform times in [0, horizon), each draining 1..maxAmount budget units.
func LeakSpikes(g *graph.Graph, count, maxAmount, horizon int, src *rng.Source) Plan {
	if maxAmount < 1 {
		maxAmount = 1
	}
	leaks := make([]Leak, 0, count)
	for i := 0; i < count; i++ {
		leaks = append(leaks, Leak{
			Time:   src.Intn(max(1, horizon)),
			Node:   src.Intn(g.N()),
			Amount: 1 + src.Intn(maxAmount),
		})
	}
	sortLeaks(leaks)
	return Plan{Leaks: leaks}
}

// FlatLoss returns a plan whose radio drops every delivery independently
// with probability p — the same model as distsim.FlatRadio, packaged as a
// Plan so it composes with crashes and leaks.
func FlatLoss(p float64, src *rng.Source) Plan {
	return Plan{Radio: &flatRadio{p: p, src: src}}
}

type flatRadio struct {
	p   float64
	src *rng.Source
}

func (r *flatRadio) Drop(from, to, round int) bool {
	return r.src.Float64() < r.p
}

// BurstyLoss returns a plan whose radio follows a per-link Gilbert–Elliott
// model: each directed link is a two-state Markov chain with a good state
// (loss pGood) and a bad state (loss pBad), switching good→bad with
// probability pGB and bad→good with probability pBG per delivery round.
// This reproduces the bursty, correlated losses real wireless links show —
// the regime where retry-based repair is genuinely stressed, because a bad
// link stays bad for ~1/pBG consecutive rounds.
func BurstyLoss(pGood, pBad, pGB, pBG float64, src *rng.Source) Plan {
	return Plan{Radio: &GilbertElliott{
		PGood: pGood, PBad: pBad, PGB: pGB, PBG: pBG,
		src:   src,
		links: make(map[[2]int]*linkState),
	}}
}

// GilbertElliott is the bursty radio; see BurstyLoss. Exported so tests and
// experiments can inspect parameters.
type GilbertElliott struct {
	PGood, PBad float64 // loss probability in the good resp. bad state
	PGB, PBG    float64 // per-round transition probabilities
	src         *rng.Source
	links       map[[2]int]*linkState
}

type linkState struct {
	bad       bool
	lastRound int
}

// Drop implements the radio interface. Per-link chains advance lazily: a
// link that was silent for r rounds performs r state transitions on its next
// delivery, so burst lengths are measured in wall-clock rounds, not in
// deliveries.
func (ge *GilbertElliott) Drop(from, to, round int) bool {
	key := [2]int{from, to}
	st, ok := ge.links[key]
	if !ok {
		st = &linkState{lastRound: round}
		ge.links[key] = st
	}
	for ; st.lastRound < round; st.lastRound++ {
		if st.bad {
			if ge.src.Float64() < ge.PBG {
				st.bad = false
			}
		} else {
			if ge.src.Float64() < ge.PGB {
				st.bad = true
			}
		}
	}
	p := ge.PGood
	if st.bad {
		p = ge.PBad
	}
	return ge.src.Float64() < p
}

// Injector is the stateful per-slot executor of a plan's crash and leak
// events. It satisfies sensim.Injector. A fresh Injector starts at slot 0;
// one Injector drives one execution.
type Injector struct {
	plan      Plan
	nextCrash int
	nextLeak  int
	hooks     obs.Hooks
}

// Injector returns a fresh executor over the plan.
func (p Plan) Injector() *Injector {
	return &Injector{plan: p}
}

// WithHooks attaches observability to the injector and returns it, so a
// caller can chain plan.Injector().WithHooks(h): every crash that lands on
// an alive node emits an obs crash event, every leak that lands a leak
// event. With the zero Hooks (the default) injection stays silent and
// allocation-free.
func (in *Injector) WithHooks(h obs.Hooks) *Injector {
	in.hooks = h
	return in
}

// Inject applies every crash and leak scheduled at or before slot t that has
// not been applied yet, mutating net. It returns the number of crashes that
// actually killed an alive node (the Deaths accounting of the simulators).
func (in *Injector) Inject(net *energy.Network, t int) int {
	deaths := 0
	crashes := in.plan.Crashes
	for in.nextCrash < len(crashes) && crashes[in.nextCrash].Time <= t {
		v := crashes[in.nextCrash].Node
		if v >= 0 && v < len(net.Alive) && net.Alive[v] {
			net.Kill(v)
			deaths++
			in.hooks.Emit(obs.Crash(t, v))
		}
		in.nextCrash++
	}
	leaks := in.plan.Leaks
	for in.nextLeak < len(leaks) && leaks[in.nextLeak].Time <= t {
		l := leaks[in.nextLeak]
		if l.Node >= 0 && l.Node < len(net.Residual) {
			net.Residual[l.Node] -= l.Amount
			if net.Residual[l.Node] < 0 {
				net.Residual[l.Node] = 0
			}
			in.hooks.Emit(obs.Leak(t, l.Node, l.Amount))
		}
		in.nextLeak++
	}
	return deaths
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
