// Package par provides the small deterministic-parallelism toolkit the
// experiment harness uses: data-parallel loops over independent trials with
// bounded workers. Determinism is preserved by the caller pre-splitting
// per-trial randomness (rng.Source.SplitN) before fanning out, so results
// are identical to the sequential execution regardless of scheduling.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n), using up to workers goroutines
// (workers <= 0 means GOMAXPROCS). It returns when all calls complete.
// fn must not panic; a panic in fn propagates and crashes the process, as
// with any goroutine.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) in parallel and collects the results in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}
