package par

import (
	"runtime"
	"sync"
)

// Pool is the long-lived sibling of ForEach: a fixed set of worker
// goroutines draining a bounded task queue. Where ForEach fans a known
// iteration space out and joins, a Pool accepts work over time — the shape a
// serving layer needs — while keeping the same two guarantees: worker count
// is fixed up front (never one goroutine per task) and the queue is bounded,
// so admission failure is an explicit TrySubmit=false the caller can turn
// into backpressure instead of unbounded memory growth.
type Pool struct {
	mu      sync.Mutex
	tasks   chan func()
	closed  bool
	workers int
	wg      sync.WaitGroup
}

// NewPool starts a pool of the given number of workers (<= 0 means
// GOMAXPROCS) over a queue holding up to depth pending tasks (< 0 means 0:
// every submission must find an idle worker).
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 0 {
		depth = 0
	}
	p := &Pool{tasks: make(chan func(), depth), workers: workers}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn unless the pool is closed or the queue is full, and
// reports whether it was accepted. It never blocks: a false return is the
// backpressure signal. An accepted task is guaranteed to run, even if Close
// is called before a worker picks it up.
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// QueueLen returns the number of accepted tasks not yet picked up by a
// worker (a point-in-time reading; it may be stale by the time it returns).
func (p *Pool) QueueLen() int { return len(p.tasks) }

// Workers returns the fixed worker count the pool was started with. Callers
// sizing a data split to the pool (one chunk per worker) read it here rather
// than re-deriving GOMAXPROCS.
func (p *Pool) Workers() int { return p.workers }

// Close stops accepting new tasks and blocks until every already accepted
// task has finished — the drain half of graceful shutdown. Close is
// idempotent and safe to call concurrently with TrySubmit.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
