package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 16)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		for !p.TrySubmit(func() { ran.Add(1) }) {
			// Queue full: a real caller would 429; the test just retries.
		}
	}
	p.Close()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d of 100 tasks", got)
	}
}

func TestPoolBackpressure(t *testing.T) {
	// One worker blocked + depth 1 queue: the third submission must fail.
	block := make(chan struct{})
	started := make(chan struct{})
	p := NewPool(1, 1)
	defer p.Close()
	if !p.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("first submission rejected")
	}
	<-started // worker is busy now, not holding a queue slot
	if !p.TrySubmit(func() {}) {
		t.Fatal("queued submission rejected")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("over-capacity submission accepted")
	}
	if got := p.QueueLen(); got != 1 {
		t.Fatalf("QueueLen = %d, want 1", got)
	}
	close(block)
}

func TestPoolCloseDrainsAcceptedTasks(t *testing.T) {
	// Tasks accepted before Close must all run even when Close races the
	// workers — the no-dropped-jobs half of graceful drain.
	block := make(chan struct{})
	started := make(chan struct{})
	p := NewPool(1, 8)
	var ran atomic.Int64
	p.TrySubmit(func() { close(started); <-block; ran.Add(1) })
	<-started
	accepted := 1
	for p.TrySubmit(func() { ran.Add(1) }) {
		accepted++
	}
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	close(block)
	<-closed
	if got := ran.Load(); int(got) != accepted {
		t.Fatalf("ran %d of %d accepted tasks after Close", got, accepted)
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submission accepted after Close")
	}
}

func TestPoolCloseIdempotentAndConcurrent(t *testing.T) {
	p := NewPool(2, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
}
