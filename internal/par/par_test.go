package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 16} {
		var count int64
		seen := make([]int32, 1000)
		ForEach(1000, workers, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if count != 1000 {
			t.Fatalf("workers=%d: ran %d of 1000", workers, count)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn called for non-positive n")
	}
}

func TestMapOrdersResults(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	a := Map(50, 1, func(i int) int { return i * 3 })
	b := Map(50, 7, func(i int) int { return i * 3 })
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("results depend on worker count")
		}
	}
}

func BenchmarkForEach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, 0, func(j int) {
			s := 0
			for k := 0; k < 1000; k++ {
				s += k
			}
			_ = s
		})
	}
}
