package distsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/solver"
)

func uniformB(n, b int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestUniformProtocolConstantRounds(t *testing.T) {
	for _, n := range []int{10, 100, 500} {
		g := gen.GNP(n, 8.0/float64(n), rng.New(uint64(n)))
		sources := rng.New(1).SplitN(n)
		nodes := NewUniformNodes(g, 3, sources)
		stats, err := Run(g, Programs(nodes), Options{MaxRounds: 10})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rounds != 1 {
			t.Fatalf("n=%d: Algorithm 1 used %d rounds, want 1 broadcast round", n, stats.Rounds)
		}
		if stats.Messages != 2*g.M() {
			t.Fatalf("n=%d: %d messages, want one per edge direction = %d", n, stats.Messages, 2*g.M())
		}
	}
}

func TestUniformProtocolMatchesLocalComputation(t *testing.T) {
	// The distributed run must produce exactly the colors a direct per-node
	// computation with the same randomness streams produces.
	g := gen.GNP(120, 0.1, rng.New(2))
	root := rng.New(42)
	sources := root.SplitN(g.N())
	nodes := NewUniformNodes(g, 3, sources)
	if _, err := Run(g, Programs(nodes), Options{MaxRounds: 10}); err != nil {
		t.Fatal(err)
	}
	d2 := g.TwoHopMinDegree()
	check := rng.New(42).SplitN(g.N())
	for v, u := range nodes {
		want := check[v].Intn(domatic.UniformColorRange(d2[v], g.N(), 3))
		if u.Color != want {
			t.Fatalf("node %d: distributed color %d, local computation %d", v, u.Color, want)
		}
	}
}

func TestUniformProtocolScheduleIsValid(t *testing.T) {
	g := gen.GNP(200, 0.25, rng.New(3))
	const b = 3
	sources := rng.New(7).SplitN(g.N())
	nodes := NewUniformNodes(g, 3, sources)
	if _, err := Run(g, Programs(nodes), Options{MaxRounds: 10}); err != nil {
		t.Fatal(err)
	}
	s := UniformSchedule(nodes, b).TruncateInvalid(g, 1)
	if err := s.Validate(g, uniformB(g.N(), b), 1); err != nil {
		t.Fatal(err)
	}
	if s.Lifetime() == 0 {
		t.Fatal("distributed uniform schedule is empty")
	}
}

func TestGeneralProtocolTwoRounds(t *testing.T) {
	g := gen.GNP(150, 0.1, rng.New(4))
	b := make([]int, g.N())
	src := rng.New(5)
	for i := range b {
		b[i] = 1 + src.Intn(4)
	}
	sources := rng.New(8).SplitN(g.N())
	nodes := NewGeneralNodes(g, b, 3, sources)
	stats, err := Run(g, Programs(nodes), Options{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 2 {
		t.Fatalf("Algorithm 2 used %d rounds, want 2", stats.Rounds)
	}
	if stats.Messages != 4*g.M() {
		t.Fatalf("%d messages, want two broadcasts = %d", stats.Messages, 4*g.M())
	}
}

func TestGeneralProtocolComputesCorrectAggregates(t *testing.T) {
	// Verify b̂_v and τ_v after round 1 against direct computation.
	g := gen.GNP(60, 0.2, rng.New(6))
	b := make([]int, g.N())
	src := rng.New(9)
	for i := range b {
		b[i] = 1 + src.Intn(6)
	}
	sources := rng.New(10).SplitN(g.N())
	nodes := NewGeneralNodes(g, b, 3, sources)
	if _, err := Run(g, Programs(nodes), Options{MaxRounds: 10}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		bhat, tau := b[v], b[v]
		for _, u := range g.Neighbors(v) {
			if b[u] > bhat {
				bhat = b[u]
			}
			tau += b[u]
		}
		if nodes[v].bhat != bhat || nodes[v].tau != tau {
			t.Fatalf("node %d: (b̂,τ) = (%d,%d), want (%d,%d)", v, nodes[v].bhat, nodes[v].tau, bhat, tau)
		}
	}
}

func TestGeneralProtocolScheduleFeasible(t *testing.T) {
	g := gen.GNP(150, 0.3, rng.New(7))
	b := make([]int, g.N())
	src := rng.New(11)
	for i := range b {
		b[i] = 1 + src.Intn(5)
	}
	sources := rng.New(12).SplitN(g.N())
	nodes := NewGeneralNodes(g, b, 3, sources)
	if _, err := Run(g, Programs(nodes), Options{MaxRounds: 10}); err != nil {
		t.Fatal(err)
	}
	s := GeneralSchedule(nodes)
	usage := s.Usage(g.N())
	for v, u := range usage {
		if u > b[v] {
			t.Fatalf("node %d used %d > battery %d", v, u, b[v])
		}
	}
	if err := s.TruncateInvalid(g, 1).Validate(g, b, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFaultTolerantScheduleFromProtocol(t *testing.T) {
	g := gen.GNP(180, 0.3, rng.New(8))
	const b, k = 4, 2
	sources := rng.New(13).SplitN(g.N())
	nodes := NewUniformNodes(g, 3, sources)
	if _, err := Run(g, Programs(nodes), Options{MaxRounds: 10}); err != nil {
		t.Fatal(err)
	}
	s := FaultTolerantSchedule(nodes, b, k).TruncateInvalid(g, k)
	if err := s.Validate(g, uniformB(g.N(), b), k); err != nil {
		t.Fatal(err)
	}
	if s.Lifetime() < b/2 {
		t.Fatalf("lifetime %d below the b/2 floor", s.Lifetime())
	}
}

func TestRunDetectsNonTermination(t *testing.T) {
	g := gen.Path(3)
	progs := make([]Program, 3)
	for i := range progs {
		progs[i] = &forever{}
	}
	if _, err := Run(g, progs, Options{MaxRounds: 5}); err == nil {
		t.Fatal("non-terminating protocol not detected")
	}
}

type forever struct{}

func (*forever) Start() any              { return 0 }
func (*forever) Round([]any) (any, bool) { return 0, false }

func TestRunEmptyGraph(t *testing.T) {
	stats, err := Run(graph.New(0), nil, Options{MaxRounds: 5})
	if err != nil || stats.Rounds != 0 || stats.Messages != 0 {
		t.Fatalf("empty run: stats=%v err=%v", stats, err)
	}
}

func TestRunProgramCountMismatch(t *testing.T) {
	if _, err := Run(gen.Path(3), make([]Program, 2), Options{MaxRounds: 5}); err == nil {
		t.Fatal("program count mismatch accepted")
	}
}

func TestDistributedUniformMatchesCentralizedGuarantee(t *testing.T) {
	// Both the distributed and the centralized Algorithm 1 must reach the
	// Lemma 4.2 guaranteed prefix on a dense graph (they use independent
	// randomness, so we compare guarantees rather than bits).
	g := gen.GNP(250, 0.4, rng.New(9))
	const b = 2
	o := core.Options{K: 3}
	central, err := solver.Solve(instance.New(g, uniformB(g.N(), b)), solver.Spec{Name: solver.NameUniform},
		solver.Options{Tries: 50, Src: rng.New(21)})
	if err != nil {
		t.Fatal(err)
	}

	sources := rng.New(22).SplitN(g.N())
	nodes := NewUniformNodes(g, 3, sources)
	if _, err := Run(g, Programs(nodes), Options{MaxRounds: 10}); err != nil {
		t.Fatal(err)
	}
	dist := UniformSchedule(nodes, b).TruncateInvalid(g, 1)

	guarantee := core.GuaranteedPhases(g, o) * b
	if central.Lifetime() < guarantee {
		t.Fatalf("centralized lifetime %d below guarantee %d", central.Lifetime(), guarantee)
	}
	if dist.Lifetime() < guarantee {
		t.Fatalf("distributed lifetime %d below guarantee %d", dist.Lifetime(), guarantee)
	}
}
