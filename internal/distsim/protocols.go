package distsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/graph"
	"repro/internal/rng"
)

// UniformNode is the per-node program of the paper's Algorithm 1:
//
//	round 1: broadcast δ_v; on receipt compute δ²_v = min over N+[v]
//	local:   draw one color uniformly from [0, δ²_v/(K ln n))
//
// After the run, Color holds the node's chosen color class.
type UniformNode struct {
	deg   int
	n     int
	k     float64
	src   *rng.Source
	Color int
}

// NewUniformNodes builds one UniformNode program per node of g. sources must
// contain one independent randomness stream per node (see rng.SplitN).
func NewUniformNodes(g *graph.Graph, k float64, sources []*rng.Source) []*UniformNode {
	if len(sources) != g.N() {
		panic(fmt.Sprintf("distsim: %d sources for %d nodes", len(sources), g.N()))
	}
	nodes := make([]*UniformNode, g.N())
	for v := range nodes {
		nodes[v] = &UniformNode{deg: g.Degree(v), n: g.N(), k: k, src: sources[v]}
	}
	return nodes
}

// Start broadcasts the node's degree.
func (u *UniformNode) Start() any { return u.deg }

// Round consumes the neighbors' degrees and finishes immediately: a single
// exchange suffices for Algorithm 1.
func (u *UniformNode) Round(received []any) (any, bool) {
	d2 := u.deg
	for _, m := range received {
		if d, ok := m.(int); ok && d < d2 {
			d2 = d
		}
	}
	u.Color = u.src.Intn(domatic.UniformColorRange(d2, u.n, u.k))
	return nil, true
}

// Programs adapts a concrete node slice to the Program interface.
func Programs[T Program](nodes []T) []Program {
	out := make([]Program, len(nodes))
	for i, n := range nodes {
		out[i] = n
	}
	return out
}

// UniformSchedule assembles the Algorithm 1 schedule from the colors the
// distributed run produced: color class i is active for b slots.
func UniformSchedule(nodes []*UniformNode, b int) *core.Schedule {
	maxColor := 0
	for _, u := range nodes {
		if u.Color > maxColor {
			maxColor = u.Color
		}
	}
	classes := make([][]int, maxColor+1)
	for v, u := range nodes {
		classes[u.Color] = append(classes[u.Color], v)
	}
	return core.FromPartition(classes, b)
}

// generalExchange is the round-1 message of Algorithm 2: (b̂_v, τ_v).
type generalExchange struct {
	bhat int
	tau  int
}

// GeneralNode is the per-node program of the paper's Algorithm 2:
//
//	round 1: broadcast b_v; compute b̂_v = max, τ_v = sum over N+[v]
//	round 2: broadcast (b̂_v, τ_v); compute b̂²_v = max b̂, τ²_v = min τ
//	local:   draw b_v colors from [0, τ²_v/(K ln(b̂²_v·n)))
//
// After the run, Colors holds the node's chosen slot set C_v.
type GeneralNode struct {
	b      int
	n      int
	k      float64
	src    *rng.Source
	round  int
	bhat   int
	tau    int
	Colors []int
}

// NewGeneralNodes builds one GeneralNode program per node of g with the
// given per-node batteries and randomness streams.
func NewGeneralNodes(g *graph.Graph, b []int, k float64, sources []*rng.Source) []*GeneralNode {
	if len(b) != g.N() || len(sources) != g.N() {
		panic(fmt.Sprintf("distsim: %d batteries, %d sources for %d nodes", len(b), len(sources), g.N()))
	}
	nodes := make([]*GeneralNode, g.N())
	for v := range nodes {
		nodes[v] = &GeneralNode{b: b[v], n: g.N(), k: k, src: sources[v]}
	}
	return nodes
}

// Start broadcasts the node's battery.
func (gn *GeneralNode) Start() any { return gn.b }

// Round implements the two exchanges of Algorithm 2.
func (gn *GeneralNode) Round(received []any) (any, bool) {
	switch gn.round {
	case 0:
		gn.bhat, gn.tau = gn.b, gn.b
		for _, m := range received {
			if bu, ok := m.(int); ok {
				if bu > gn.bhat {
					gn.bhat = bu
				}
				gn.tau += bu
			}
		}
		gn.round = 1
		return generalExchange{bhat: gn.bhat, tau: gn.tau}, false
	default:
		bhat2, tau2 := gn.bhat, gn.tau
		for _, m := range received {
			if ex, ok := m.(generalExchange); ok {
				if ex.bhat > bhat2 {
					bhat2 = ex.bhat
				}
				if ex.tau < tau2 {
					tau2 = ex.tau
				}
			}
		}
		r := core.GeneralColorRange(tau2, bhat2, gn.n, gn.k)
		seen := make(map[int]bool, gn.b)
		for j := 0; j < gn.b; j++ {
			c := gn.src.Intn(r)
			if !seen[c] {
				seen[c] = true
				gn.Colors = append(gn.Colors, c)
			}
		}
		return nil, true
	}
}

// GeneralSchedule assembles the Algorithm 2 schedule from the slot sets the
// distributed run produced: slot t is served by every node with t ∈ C_v.
func GeneralSchedule(nodes []*GeneralNode) *core.Schedule {
	maxColor := -1
	for _, gn := range nodes {
		for _, c := range gn.Colors {
			if c > maxColor {
				maxColor = c
			}
		}
	}
	s := &core.Schedule{}
	slots := make([][]int, maxColor+1)
	for v, gn := range nodes {
		for _, c := range gn.Colors {
			slots[c] = append(slots[c], v)
		}
	}
	for t := 0; t <= maxColor; t++ {
		s.Phases = append(s.Phases, core.Phase{Set: slots[t], Duration: 1})
	}
	return s
}

// FaultTolerantSchedule assembles the Algorithm 3 schedule from the colors
// of a distributed Algorithm 1 run: everyone is active for ⌊b/2⌋ slots, then
// groups of tol consecutive color classes are merged and each merged group
// is active for the remaining ⌈b/2⌉ slots.
func FaultTolerantSchedule(nodes []*UniformNode, b, tol int) *core.Schedule {
	if tol < 1 {
		panic(fmt.Sprintf("distsim: tolerance %d must be >= 1", tol))
	}
	n := len(nodes)
	s := &core.Schedule{}
	if n == 0 || b == 0 {
		return s
	}
	firstHalf := b / 2
	secondHalf := b - firstHalf
	if firstHalf > 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		s.Phases = append(s.Phases, core.Phase{Set: all, Duration: firstHalf})
	}
	maxColor := 0
	for _, u := range nodes {
		if u.Color > maxColor {
			maxColor = u.Color
		}
	}
	classes := make([][]int, maxColor+1)
	for v, u := range nodes {
		classes[u.Color] = append(classes[u.Color], v)
	}
	for start := 0; start+tol <= len(classes); start += tol {
		var merged []int
		for c := start; c < start+tol; c++ {
			merged = append(merged, classes[c]...)
		}
		group := core.FromPartition([][]int{merged}, secondHalf)
		s.Phases = append(s.Phases, group.Phases...)
	}
	return s
}
