package distsim

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

func TestFlatRadioZeroLossEqualsReliableRun(t *testing.T) {
	g := gen.GNP(60, 0.15, rng.New(1))
	a := NewUniformNodes(g, 3, rng.New(7).SplitN(g.N()))
	sa, err := Run(g, Programs(a), Options{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A zero-loss radio never drops, so the execution must be identical to
	// the reliable medium — the radio's coin draws are invisible to nodes.
	b := NewUniformNodes(g, 3, rng.New(7).SplitN(g.N()))
	sb, err := Run(g, Programs(b), Options{MaxRounds: 10, Radio: FlatRadio(0, rng.New(99))})
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	for v := range a {
		if a[v].Color != b[v].Color {
			t.Fatal("zero-loss run diverged from the reliable run")
		}
	}
}

func TestLossyRunDropsAndStillTerminates(t *testing.T) {
	// Algorithm 1 under loss: the protocol still terminates (one round),
	// messages are counted as sent, and some deliveries are dropped.
	g := gen.GNP(200, 0.1, rng.New(2))
	nodes := NewUniformNodes(g, 3, rng.New(8).SplitN(g.N()))
	stats, err := Run(g, Programs(nodes), Options{MaxRounds: 10, Radio: FlatRadio(0.3, rng.New(9))})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", stats.Rounds)
	}
	if stats.Messages != 2*g.M() {
		t.Fatalf("messages = %d, want %d (sends counted despite loss)", stats.Messages, 2*g.M())
	}
	if stats.Dropped == 0 {
		t.Fatal("30% loss dropped nothing")
	}
	// Every node still chose a color (missing messages just bias δ² up).
	for v, u := range nodes {
		if u.Color < 0 {
			t.Fatalf("node %d has no color", v)
		}
	}
}

func TestLossyRunDropRateSane(t *testing.T) {
	g := gen.GNP(300, 0.08, rng.New(3))
	nodes := NewGeneralNodes(g, uniformB(g.N(), 3), 3, rng.New(10).SplitN(g.N()))
	stats, err := Run(g, Programs(nodes), Options{MaxRounds: 10, Radio: FlatRadio(0.2, rng.New(11))})
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(stats.Dropped) / float64(stats.Messages)
	if rate < 0.1 || rate > 0.3 {
		t.Fatalf("drop rate %.3f far from configured 0.2", rate)
	}
}

func TestLossyRunDeterministic(t *testing.T) {
	// Identical (graph, programs, loss, seed) inputs must yield identical
	// Stats and identical protocol outcomes across runs: the loss coins are
	// drawn in a fixed receiver-then-neighbor order, never from map
	// iteration or scheduling order.
	g := gen.GNP(120, 0.12, rng.New(21))
	run := func() (Stats, []int) {
		nodes := NewUniformNodes(g, 3, rng.New(33).SplitN(g.N()))
		st, err := Run(g, Programs(nodes), Options{MaxRounds: 10, Radio: FlatRadio(0.35, rng.New(77))})
		if err != nil {
			t.Fatal(err)
		}
		colors := make([]int, len(nodes))
		for v, nd := range nodes {
			colors[v] = nd.Color
		}
		return st, colors
	}
	s1, c1 := run()
	for rep := 0; rep < 3; rep++ {
		s2, c2 := run()
		if s1 != s2 {
			t.Fatalf("stats diverge across identical runs: %+v vs %+v", s1, s2)
		}
		for v := range c1 {
			if c1[v] != c2[v] {
				t.Fatalf("node %d outcome diverges across identical runs", v)
			}
		}
	}
	if s1.Dropped == 0 {
		t.Fatal("test exercised no losses")
	}
}
