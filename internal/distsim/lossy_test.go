//lint:file-ignore SA1019 this file pins the behavior of the deprecated RunLossy/RunRadio wrappers, so it calls them on purpose
package distsim

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

func TestRunLossyValidation(t *testing.T) {
	g := gen.Path(3)
	progs := make([]Program, 3)
	for i := range progs {
		progs[i] = &forever{}
	}
	if _, err := RunLossy(g, progs, 5, 1.5, rng.New(1)); err == nil {
		t.Error("loss 1.5 accepted")
	}
	if _, err := RunLossy(g, progs, 5, 0.5, nil); err == nil {
		t.Error("loss without source accepted")
	}
}

func TestRunLossyZeroLossEqualsRun(t *testing.T) {
	g := gen.GNP(60, 0.15, rng.New(1))
	a := NewUniformNodes(g, 3, rng.New(7).SplitN(g.N()))
	sa, err := Run(g, Programs(a), Options{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	b := NewUniformNodes(g, 3, rng.New(7).SplitN(g.N()))
	sb, err := RunLossy(g, Programs(b), 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	for v := range a {
		if a[v].Color != b[v].Color {
			t.Fatal("zero-loss run diverged from Run")
		}
	}
}

func TestRunLossyDropsAndStillTerminates(t *testing.T) {
	// Algorithm 1 under loss: the protocol still terminates (one round),
	// messages are counted as sent, and some deliveries are dropped.
	g := gen.GNP(200, 0.1, rng.New(2))
	nodes := NewUniformNodes(g, 3, rng.New(8).SplitN(g.N()))
	stats, err := RunLossy(g, Programs(nodes), 10, 0.3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", stats.Rounds)
	}
	if stats.Messages != 2*g.M() {
		t.Fatalf("messages = %d, want %d (sends counted despite loss)", stats.Messages, 2*g.M())
	}
	if stats.Dropped == 0 {
		t.Fatal("30% loss dropped nothing")
	}
	// Every node still chose a color (missing messages just bias δ² up).
	for v, u := range nodes {
		if u.Color < 0 {
			t.Fatalf("node %d has no color", v)
		}
	}
}

func TestRunLossyDropRateSane(t *testing.T) {
	g := gen.GNP(300, 0.08, rng.New(3))
	nodes := NewGeneralNodes(g, uniformB(g.N(), 3), 3, rng.New(10).SplitN(g.N()))
	stats, err := RunLossy(g, Programs(nodes), 10, 0.2, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(stats.Dropped) / float64(stats.Messages)
	if rate < 0.1 || rate > 0.3 {
		t.Fatalf("drop rate %.3f far from configured 0.2", rate)
	}
}

func TestRunLossyDeterministic(t *testing.T) {
	// Identical (graph, programs, loss, seed) inputs must yield identical
	// Stats and identical protocol outcomes across runs: the loss coins are
	// drawn in a fixed receiver-then-neighbor order, never from map
	// iteration or scheduling order.
	g := gen.GNP(120, 0.12, rng.New(21))
	run := func() (Stats, []int) {
		nodes := NewUniformNodes(g, 3, rng.New(33).SplitN(g.N()))
		st, err := RunLossy(g, Programs(nodes), 10, 0.35, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		colors := make([]int, len(nodes))
		for v, nd := range nodes {
			colors[v] = nd.Color
		}
		return st, colors
	}
	s1, c1 := run()
	for rep := 0; rep < 3; rep++ {
		s2, c2 := run()
		if s1 != s2 {
			t.Fatalf("stats diverge across identical runs: %+v vs %+v", s1, s2)
		}
		for v := range c1 {
			if c1[v] != c2[v] {
				t.Fatalf("node %d outcome diverges across identical runs", v)
			}
		}
	}
	if s1.Dropped == 0 {
		t.Fatal("test exercised no losses")
	}
}

func TestRunRadioNilRadioEqualsRun(t *testing.T) {
	g := gen.GNP(50, 0.2, rng.New(4))
	a := NewUniformNodes(g, 3, rng.New(9).SplitN(g.N()))
	sa, err := Run(g, Programs(a), Options{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	b := NewUniformNodes(g, 3, rng.New(9).SplitN(g.N()))
	sb, err := RunRadio(g, Programs(b), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("nil-radio RunRadio diverged from Run: %+v vs %+v", sa, sb)
	}
}
