package distsim

import (
	"testing"

	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func runMIS(t *testing.T, g *graph.Graph, seed uint64) []int {
	t.Helper()
	nodes := NewMISNodes(g.N(), rng.New(seed).SplitN(g.N()))
	if _, err := Run(g, Programs(nodes), Options{MaxRounds: 40*3 + 10}); err != nil {
		t.Fatal(err)
	}
	return MISSet(nodes)
}

func TestMISProtocolProducesMaximalIndependentSet(t *testing.T) {
	src := rng.New(1)
	graphs := []*graph.Graph{
		gen.Path(20),
		gen.Ring(15),
		gen.Complete(8),
		gen.Grid(6, 6),
		gen.GNP(120, 0.08, src),
	}
	for i, g := range graphs {
		mis := runMIS(t, g, uint64(100+i))
		if !domset.IsMaximalIndependent(g, mis) {
			t.Errorf("graph %d: protocol MIS %v invalid", i, mis)
		}
	}
}

func TestMISProtocolIsolatedNodes(t *testing.T) {
	g := graph.New(5)
	mis := runMIS(t, g, 7)
	if len(mis) != 5 {
		t.Fatalf("isolated nodes MIS = %v, want all", mis)
	}
}

func TestMISProtocolDeterministic(t *testing.T) {
	g := gen.GNP(80, 0.1, rng.New(2))
	a := runMIS(t, g, 42)
	b := runMIS(t, g, 42)
	if len(a) != len(b) {
		t.Fatal("MIS not reproducible")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MIS not reproducible")
		}
	}
}

func TestMISProtocolRoundsLogarithmic(t *testing.T) {
	// O(log n) Luby rounds w.h.p.; each costs 3 broadcasts. Generous cap.
	g := gen.GNP(400, 0.05, rng.New(3))
	nodes := NewMISNodes(g.N(), rng.New(11).SplitN(g.N()))
	stats, err := Run(g, Programs(nodes), Options{MaxRounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds > 3*30 {
		t.Errorf("MIS used %d rounds on n=400 — way beyond O(log n) expectations", stats.Rounds)
	}
	if !domset.IsMaximalIndependent(g, MISSet(nodes)) {
		t.Fatal("result not a maximal independent set")
	}
}

func runGreedyDS(t *testing.T, g *graph.Graph) ([]int, Stats) {
	t.Helper()
	nodes := NewGreedyDSNodes(g.N())
	stats, err := Run(g, Programs(nodes), Options{MaxRounds: 4*g.N() + 10})
	if err != nil {
		t.Fatal(err)
	}
	return GreedyDSSet(nodes), stats
}

func TestGreedyDSProtocolProducesDominatingSet(t *testing.T) {
	src := rng.New(4)
	graphs := []*graph.Graph{
		gen.Path(25),
		gen.Star(12),
		gen.Complete(9),
		gen.Grid(7, 7),
		gen.GNP(150, 0.07, src),
		gen.RandomTree(60, src),
	}
	for i, g := range graphs {
		ds, _ := runGreedyDS(t, g)
		if !domset.IsDominating(g, ds, nil) {
			t.Errorf("graph %d: protocol DS %v not dominating", i, ds)
		}
	}
}

func TestGreedyDSProtocolStarPicksCenter(t *testing.T) {
	ds, _ := runGreedyDS(t, gen.Star(10))
	if len(ds) != 1 || ds[0] != 0 {
		t.Fatalf("star DS = %v, want [0]", ds)
	}
}

func TestGreedyDSProtocolQualityVsCentralized(t *testing.T) {
	// The simplified distributed greedy should stay within a small factor of
	// the centralized set-cover greedy on random graphs.
	src := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		g := gen.GNP(120, 0.1, src)
		ds, _ := runGreedyDS(t, g)
		central := domset.Greedy(g)
		if len(ds) > 4*len(central)+2 {
			t.Errorf("trial %d: distributed %d vs centralized %d", trial, len(ds), len(central))
		}
	}
}

func TestGreedyDSProtocolJoinersAreTwoHopSeparatedPerIteration(t *testing.T) {
	// Determinism check plus structural sanity: on a ring, the result must
	// be dominating with roughly n/3 nodes.
	g := gen.Ring(30)
	ds, _ := runGreedyDS(t, g)
	if !domset.IsDominating(g, ds, nil) {
		t.Fatal("ring DS invalid")
	}
	if len(ds) < 10 || len(ds) > 15 {
		t.Errorf("ring DS size %d, expected near n/3 = 10", len(ds))
	}
}

func TestGreedyDSProtocolIsolatedNodesSelfJoin(t *testing.T) {
	g := graph.New(4)
	ds, _ := runGreedyDS(t, g)
	if len(ds) != 4 {
		t.Fatalf("isolated nodes DS = %v, want all four", ds)
	}
}
