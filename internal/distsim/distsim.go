// Package distsim is a synchronous message-passing simulator that runs the
// paper's algorithms as genuine distributed protocols, substantiating the
// claim that they are "completely distributed and require only a constant
// number of communication rounds" (two broadcast exchanges, i.e. 2-hop
// information).
//
// The model is the standard synchronous LOCAL/CONGEST round model the paper
// assumes: in each round every node broadcasts one message to all its
// neighbors, then processes the messages received that round. The simulator
// counts rounds and messages so experiment E8 can report both.
package distsim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Program is the per-node state machine of a protocol. One Program instance
// is created per node; it communicates only through the returned broadcast
// payloads.
type Program interface {
	// Start returns the payload broadcast to all neighbors in the first
	// round, or nil to stay silent.
	Start() any
	// Round delivers the payloads received from neighbors in the previous
	// round (aligned with the node's sorted neighbor list; nil entries mean
	// the neighbor was silent). It returns the next broadcast payload (nil
	// for silence) and whether the node has terminated. A terminated node
	// sends nothing and ignores further input.
	Round(received []any) (out any, done bool)
}

// Stats reports the cost of a protocol execution.
type Stats struct {
	Rounds   int // communication rounds executed (including the Start round)
	Messages int // point-to-point messages sent (one per edge direction per broadcast)
	Dropped  int // messages lost to the unreliable radio (RunLossy/RunRadio only)
}

// Add accumulates another execution's cost into s, so callers that run a
// protocol repeatedly (retries, per-slot repairs) can report a total.
func (s *Stats) Add(o Stats) {
	s.Rounds += o.Rounds
	s.Messages += o.Messages
	s.Dropped += o.Dropped
}

// Radio models an unreliable medium: Drop is consulted once per
// point-to-point delivery of a non-nil payload and reports whether that
// delivery is lost. from/to are node IDs; round is the 0-based delivery
// round of the current execution. Implementations may keep per-link state
// (e.g. Gilbert–Elliott burst models); they are called in a deterministic
// order (receivers in increasing node ID, then the receiver's sorted
// neighbor list), which is what makes lossy executions reproducible.
//
// The interface is defined here, but implementations live wherever the
// fault model does (package chaos provides flat and bursty radios).
type Radio interface {
	Drop(from, to, round int) bool
}

// flatRadio drops every delivery independently with fixed probability.
type flatRadio struct {
	loss float64
	src  *rng.Source
}

func (r flatRadio) Drop(from, to, round int) bool {
	return r.src.Float64() < r.loss
}

// Run executes one Program per node of g until every node terminates or
// maxRounds is reached. programs[v] is node v's state machine. It returns
// the execution stats; an error is returned only if the protocol fails to
// terminate within maxRounds.
func Run(g *graph.Graph, programs []Program, maxRounds int) (Stats, error) {
	return RunLossy(g, programs, maxRounds, 0, nil)
}

// RunLossy is Run under an unreliable radio: each point-to-point delivery
// is dropped independently with probability loss (the sender still pays the
// transmission — Messages counts sends, Dropped counts losses). src supplies
// the loss coin flips and must be non-nil when loss > 0. This measures the
// robustness of the constant-round protocols to the message loss real
// wireless links exhibit (experiment E21).
func RunLossy(g *graph.Graph, programs []Program, maxRounds int, loss float64, src *rng.Source) (Stats, error) {
	if loss < 0 || loss >= 1 {
		if loss != 0 {
			return Stats{}, fmt.Errorf("distsim: loss probability %v out of [0, 1)", loss)
		}
	}
	if loss > 0 && src == nil {
		return Stats{}, fmt.Errorf("distsim: loss > 0 requires a randomness source")
	}
	var radio Radio
	if loss > 0 {
		radio = flatRadio{loss: loss, src: src}
	}
	return RunRadio(g, programs, maxRounds, radio)
}

// RunRadio is Run under an arbitrary unreliable-radio model: every
// point-to-point delivery is offered to radio.Drop, and dropped deliveries
// count in Stats.Dropped (the sender still pays the transmission). A nil
// radio is the reliable medium, identical to Run.
func RunRadio(g *graph.Graph, programs []Program, maxRounds int, radio Radio) (Stats, error) {
	n := g.N()
	if len(programs) != n {
		return Stats{}, fmt.Errorf("distsim: %d programs for %d nodes", len(programs), n)
	}
	var stats Stats
	if n == 0 {
		return stats, nil
	}

	outbox := make([]any, n)
	done := make([]bool, n)
	remaining := n

	// Start round.
	anySent := false
	for v := 0; v < n; v++ {
		outbox[v] = programs[v].Start()
		if outbox[v] != nil {
			anySent = true
			stats.Messages += g.Degree(v)
		}
	}
	if anySent {
		stats.Rounds++
	}

	for round := 0; remaining > 0; round++ {
		if round >= maxRounds {
			return stats, fmt.Errorf("distsim: %d nodes still running after %d rounds", remaining, maxRounds)
		}
		next := make([]any, n)
		anySent = false
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			nbrs := g.Neighbors(v)
			received := make([]any, len(nbrs))
			for i, u := range nbrs {
				m := outbox[u]
				if m != nil && radio != nil && radio.Drop(int(u), v, round) {
					stats.Dropped++
					m = nil
				}
				received[i] = m
			}
			out, finished := programs[v].Round(received)
			if finished {
				done[v] = true
				remaining--
			}
			if out != nil {
				next[v] = out
				anySent = true
				stats.Messages += len(nbrs)
			}
		}
		outbox = next
		if anySent {
			stats.Rounds++
		}
	}
	return stats, nil
}
