// Package distsim is a synchronous message-passing simulator that runs the
// paper's algorithms as genuine distributed protocols, substantiating the
// claim that they are "completely distributed and require only a constant
// number of communication rounds" (two broadcast exchanges, i.e. 2-hop
// information).
//
// The model is the standard synchronous LOCAL/CONGEST round model the paper
// assumes: in each round every node broadcasts one message to all its
// neighbors, then processes the messages received that round. The simulator
// counts rounds and messages so experiment E8 can report both, and emits
// per-round trace events through the obs layer so long protocol executions
// can be watched live.
//
// The single entry point is Run(g, programs, Options); Options.Validate
// rejects malformed configurations (negative round caps, loss rates outside
// [0, 1), lossy radios without a randomness source) before a round executes.
package distsim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Program is the per-node state machine of a protocol. One Program instance
// is created per node; it communicates only through the returned broadcast
// payloads.
type Program interface {
	// Start returns the payload broadcast to all neighbors in the first
	// round, or nil to stay silent.
	Start() any
	// Round delivers the payloads received from neighbors in the previous
	// round (aligned with the node's sorted neighbor list; nil entries mean
	// the neighbor was silent). It returns the next broadcast payload (nil
	// for silence) and whether the node has terminated. A terminated node
	// sends nothing and ignores further input.
	Round(received []any) (out any, done bool)
}

// Stats reports the cost of a protocol execution.
type Stats struct {
	Rounds   int // communication rounds executed (including the Start round)
	Messages int // point-to-point messages sent (one per edge direction per broadcast)
	Dropped  int // messages lost to the unreliable radio
}

// Add accumulates another execution's cost into s, so callers that run a
// protocol repeatedly (retries, per-slot repairs) can report a total.
func (s *Stats) Add(o Stats) {
	s.Rounds += o.Rounds
	s.Messages += o.Messages
	s.Dropped += o.Dropped
}

// Radio models an unreliable medium: Drop is consulted once per
// point-to-point delivery of a non-nil payload and reports whether that
// delivery is lost. from/to are node IDs; round is the 0-based delivery
// round of the current execution. Implementations may keep per-link state
// (e.g. Gilbert–Elliott burst models); they are called in a deterministic
// order (receivers in increasing node ID, then the receiver's sorted
// neighbor list), which is what makes lossy executions reproducible.
//
// The interface is defined here, but implementations live wherever the
// fault model does (package chaos provides flat and bursty radios;
// FlatRadio below covers the common independent-loss case locally).
type Radio interface {
	Drop(from, to, round int) bool
}

// Options configures a protocol execution. The knob names follow the
// canonical shape documented in package obs: an execution cap (MaxRounds),
// an unreliable-medium model (Radio), and an embedded obs.Hooks whose
// promoted Trace field receives one obs.Round event per communication round
// (sent/dropped message counts). The zero value is a reliable medium with
// the default round cap and tracing off.
type Options struct {
	// MaxRounds bounds the execution; exceeding it is a protocol failure.
	// 0 means DefaultMaxRounds(g).
	MaxRounds int
	// Radio is the unreliable-medium model; nil is the reliable medium.
	Radio Radio
	// Hooks carries the observability sinks (obs.Hooks; the promoted Trace
	// field receives per-round events). The zero value is the no-op
	// default: the round loop stays allocation-free.
	obs.Hooks
}

// DefaultMaxRounds is the round cap used when Options.MaxRounds is 0:
// generous for every protocol in this repository (the paper's algorithms
// need a constant number of rounds; the iterative baselines need O(n)).
func DefaultMaxRounds(g *graph.Graph) int { return 4*g.N() + 16 }

// Validate reports configuration errors. Run calls it before the first
// round, so a malformed execution fails with a diagnosis instead of running
// under a nonsensical model. Custom Radio implementations are assumed valid
// by construction — only the locally built FlatRadio carries parameters the
// package can check.
func (o Options) Validate() error {
	if o.MaxRounds < 0 {
		return fmt.Errorf("distsim: MaxRounds %d must be >= 0 (0 = default)", o.MaxRounds)
	}
	if r, ok := o.Radio.(flatRadio); ok {
		if r.loss < 0 || r.loss >= 1 {
			return fmt.Errorf("distsim: loss probability %v out of [0, 1)", r.loss)
		}
		if r.loss > 0 && r.src == nil {
			return fmt.Errorf("distsim: loss > 0 requires a randomness source")
		}
	}
	return nil
}

// FlatRadio returns a Radio dropping every delivery independently with
// probability loss, drawn from src. It is the common independent-loss model;
// Options.Validate checks loss and src so a misconfigured radio fails fast
// instead of silently never (or always) dropping.
func FlatRadio(loss float64, src *rng.Source) Radio {
	return flatRadio{loss: loss, src: src}
}

// flatRadio drops every delivery independently with fixed probability.
type flatRadio struct {
	loss float64
	src  *rng.Source
}

func (r flatRadio) Drop(from, to, round int) bool {
	return r.src.Float64() < r.loss
}

// Run executes one Program per node of g until every node terminates or
// opt.MaxRounds is reached. programs[v] is node v's state machine. It
// returns the execution stats; an error is returned only if the protocol
// fails to terminate in time. Every point-to-point delivery is offered to
// opt.Radio (when non-nil), and dropped deliveries count in Stats.Dropped —
// the sender still pays the transmission.
func Run(g *graph.Graph, programs []Program, opt Options) (Stats, error) {
	n := g.N()
	if len(programs) != n {
		return Stats{}, fmt.Errorf("distsim: %d programs for %d nodes", len(programs), n)
	}
	if err := opt.Validate(); err != nil {
		return Stats{}, err
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(g)
	}
	radio := opt.Radio
	var stats Stats
	if n == 0 {
		return stats, nil
	}

	outbox := make([]any, n)
	done := make([]bool, n)
	remaining := n

	// Start round.
	anySent := false
	sentNow := 0
	for v := 0; v < n; v++ {
		outbox[v] = programs[v].Start()
		if outbox[v] != nil {
			anySent = true
			sentNow += g.Degree(v)
		}
	}
	stats.Messages += sentNow
	if anySent {
		stats.Rounds++
		opt.Emit(obs.Round(0, sentNow, 0))
	}

	for round := 0; remaining > 0; round++ {
		if round >= maxRounds {
			return stats, fmt.Errorf("distsim: %d nodes still running after %d rounds", remaining, maxRounds)
		}
		next := make([]any, n)
		anySent = false
		sentNow = 0
		droppedNow := 0
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			nbrs := g.Neighbors(v)
			received := make([]any, len(nbrs))
			for i, u := range nbrs {
				m := outbox[u]
				if m != nil && radio != nil && radio.Drop(int(u), v, round) {
					droppedNow++
					m = nil
				}
				received[i] = m
			}
			out, finished := programs[v].Round(received)
			if finished {
				done[v] = true
				remaining--
			}
			if out != nil {
				next[v] = out
				anySent = true
				sentNow += len(nbrs)
			}
		}
		outbox = next
		stats.Messages += sentNow
		stats.Dropped += droppedNow
		if anySent {
			stats.Rounds++
		}
		// One trace event per delivery round with traffic: the start round
		// is event round 0, loop iteration r is round r+1, so indices stay
		// unique even when a round only drops inherited messages.
		if anySent || droppedNow > 0 {
			opt.Emit(obs.Round(round+1, sentNow, droppedNow))
		}
	}
	return stats, nil
}
