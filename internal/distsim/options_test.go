package distsim

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/rng"
)

// TestRunLossyRadio pins the lossy-execution contract of the unified entry
// point: a FlatRadio actually drops traffic, and the same Options reproduce
// the same stats (the radio's draw order is deterministic).
func TestRunLossyRadio(t *testing.T) {
	g := gen.GNP(40, 0.2, rng.New(3))
	newNodes := func() []Program {
		return Programs(NewUniformNodes(g, 3, rng.New(5).SplitN(g.N())))
	}

	lossy, err := Run(g, newNodes(), Options{MaxRounds: 10, Radio: FlatRadio(0.3, rng.New(9))})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Dropped == 0 {
		t.Fatal("0.3-loss radio dropped nothing")
	}
	again, err := Run(g, newNodes(), Options{MaxRounds: 10, Radio: FlatRadio(0.3, rng.New(9))})
	if err != nil || again != lossy {
		t.Fatalf("lossy run not reproducible: %+v vs %+v (err %v)", again, lossy, err)
	}
}

// TestOptionsValidation pins the configuration checking that used to live in
// the deleted RunLossy wrapper and now guards every execution: Run consults
// Options.Validate before the first round.
func TestOptionsValidation(t *testing.T) {
	if err := (Options{Radio: FlatRadio(1.5, rng.New(1))}).Validate(); err == nil {
		t.Error("loss 1.5 accepted")
	}
	if err := (Options{Radio: FlatRadio(0.5, nil)}).Validate(); err == nil {
		t.Error("loss without source accepted")
	}
	if err := (Options{MaxRounds: -1}).Validate(); err == nil {
		t.Error("negative MaxRounds accepted")
	}
	if err := (Options{Radio: FlatRadio(0.5, rng.New(1))}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}

	// Run consults Validate before the first round: the error surfaces even
	// though the programs themselves would execute fine.
	g := gen.Path(3)
	progs := Programs(NewUniformNodes(g, 3, rng.New(2).SplitN(g.N())))
	_, err := Run(g, progs, Options{Radio: FlatRadio(1.5, rng.New(1))})
	if err == nil || !strings.Contains(err.Error(), "loss probability") {
		t.Fatalf("Run did not surface the validation error, got %v", err)
	}
}

func TestRunDefaultMaxRounds(t *testing.T) {
	g := gen.Path(5)
	nodes := NewUniformNodes(g, 3, rng.New(1).SplitN(g.N()))
	// MaxRounds 0 resolves to DefaultMaxRounds(g), plenty for Algorithm 1.
	if _, err := Run(g, Programs(nodes), Options{}); err != nil {
		t.Fatalf("zero Options failed: %v", err)
	}
}

// TestRunRoundEvents checks the tracing invariant: per-round events
// partition the execution's message totals exactly, with strictly
// increasing round indices.
func TestRunRoundEvents(t *testing.T) {
	g := gen.GNP(30, 0.25, rng.New(11))
	nodes := NewUniformNodes(g, 3, rng.New(4).SplitN(g.N()))
	var mem obs.Memory
	stats, err := Run(g, Programs(nodes), Options{
		MaxRounds: 10,
		Radio:     FlatRadio(0.2, rng.New(8)),
		Hooks:     obs.Hooks{Trace: &mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	sent, dropped, lastRound := 0, 0, -1
	for _, ev := range mem.Events {
		if ev.Type != obs.EvRound {
			t.Fatalf("unexpected event type %v", ev.Type)
		}
		if ev.T <= lastRound {
			t.Fatalf("round indices not increasing: %d after %d", ev.T, lastRound)
		}
		lastRound = ev.T
		sent += ev.A
		dropped += ev.B
	}
	if sent != stats.Messages || dropped != stats.Dropped {
		t.Fatalf("events sum to %d sent / %d dropped, stats say %d / %d",
			sent, dropped, stats.Messages, stats.Dropped)
	}
	if len(mem.Events) < stats.Rounds {
		t.Fatalf("%d round events for %d rounds", len(mem.Events), stats.Rounds)
	}
}

// TestRunTracingDeterministic pins that attaching a tracer does not perturb
// the execution: stats with and without tracing are identical.
func TestRunTracingDeterministic(t *testing.T) {
	g := gen.GNP(40, 0.2, rng.New(21))
	newOpt := func(tr obs.Tracer) Options {
		return Options{MaxRounds: 10, Radio: FlatRadio(0.25, rng.New(13)), Hooks: obs.Hooks{Trace: tr}}
	}
	nodes := func() []Program {
		return Programs(NewUniformNodes(g, 3, rng.New(6).SplitN(g.N())))
	}
	plain, err := Run(g, nodes(), newOpt(nil))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(g, nodes(), newOpt(&obs.Memory{}))
	if err != nil || traced != plain {
		t.Fatalf("tracing perturbed the run: %+v vs %+v (err %v)", traced, plain, err)
	}
}
