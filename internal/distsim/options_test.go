package distsim

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/rng"
)

// TestUnifiedRunMatchesWrappers pins the API-collapse contract: the three
// historical entry points are thin wrappers over Run(g, programs, Options)
// and produce identical stats for identical inputs.
func TestUnifiedRunMatchesWrappers(t *testing.T) {
	g := gen.GNP(40, 0.2, rng.New(3))
	newNodes := func() []Program {
		return Programs(NewUniformNodes(g, 3, rng.New(5).SplitN(g.N())))
	}

	want, err := Run(g, newNodes(), Options{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1019 the wrapper's delegation is exactly what this test pins
	gotMax, err := RunMaxRounds(g, newNodes(), 10)
	if err != nil || gotMax != want {
		t.Fatalf("RunMaxRounds = %+v, %v; want %+v", gotMax, err, want)
	}
	//lint:ignore SA1019 the wrapper's delegation is exactly what this test pins
	gotRadio, err := RunRadio(g, newNodes(), 10, nil)
	if err != nil || gotRadio != want {
		t.Fatalf("RunRadio = %+v, %v; want %+v", gotRadio, err, want)
	}

	lossyOpt, err := Run(g, newNodes(), Options{MaxRounds: 10, Radio: FlatRadio(0.3, rng.New(9))})
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1019 the wrapper's delegation is exactly what this test pins
	gotLossy, err := RunLossy(g, newNodes(), 10, 0.3, rng.New(9))
	if err != nil || gotLossy != lossyOpt {
		t.Fatalf("RunLossy = %+v, %v; want %+v", gotLossy, err, lossyOpt)
	}
	if lossyOpt.Dropped == 0 {
		t.Fatal("0.3-loss radio dropped nothing")
	}
}

// TestDeprecatedRunLossyValidation pins the argument checking the RunLossy
// wrapper performs on top of Run — the unified API takes a prebuilt Radio
// and has nothing to validate, so this contract lives only in the wrapper.
func TestDeprecatedRunLossyValidation(t *testing.T) {
	g := gen.Path(3)
	progs := make([]Program, 3)
	for i := range progs {
		progs[i] = &forever{}
	}
	//lint:ignore SA1019 the wrapper's validation is exactly what this test pins
	if _, err := RunLossy(g, progs, 5, 1.5, rng.New(1)); err == nil {
		t.Error("loss 1.5 accepted")
	}
	//lint:ignore SA1019 the wrapper's validation is exactly what this test pins
	if _, err := RunLossy(g, progs, 5, 0.5, nil); err == nil {
		t.Error("loss without source accepted")
	}
}

func TestRunDefaultMaxRounds(t *testing.T) {
	g := gen.Path(5)
	nodes := NewUniformNodes(g, 3, rng.New(1).SplitN(g.N()))
	// MaxRounds 0 resolves to DefaultMaxRounds(g), plenty for Algorithm 1.
	if _, err := Run(g, Programs(nodes), Options{}); err != nil {
		t.Fatalf("zero Options failed: %v", err)
	}
}

// TestRunRoundEvents checks the tracing invariant: per-round events
// partition the execution's message totals exactly, with strictly
// increasing round indices.
func TestRunRoundEvents(t *testing.T) {
	g := gen.GNP(30, 0.25, rng.New(11))
	nodes := NewUniformNodes(g, 3, rng.New(4).SplitN(g.N()))
	var mem obs.Memory
	stats, err := Run(g, Programs(nodes), Options{
		MaxRounds: 10,
		Radio:     FlatRadio(0.2, rng.New(8)),
		Hooks:     obs.Hooks{Trace: &mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	sent, dropped, lastRound := 0, 0, -1
	for _, ev := range mem.Events {
		if ev.Type != obs.EvRound {
			t.Fatalf("unexpected event type %v", ev.Type)
		}
		if ev.T <= lastRound {
			t.Fatalf("round indices not increasing: %d after %d", ev.T, lastRound)
		}
		lastRound = ev.T
		sent += ev.A
		dropped += ev.B
	}
	if sent != stats.Messages || dropped != stats.Dropped {
		t.Fatalf("events sum to %d sent / %d dropped, stats say %d / %d",
			sent, dropped, stats.Messages, stats.Dropped)
	}
	if len(mem.Events) < stats.Rounds {
		t.Fatalf("%d round events for %d rounds", len(mem.Events), stats.Rounds)
	}
}

// TestRunTracingDeterministic pins that attaching a tracer does not perturb
// the execution: stats with and without tracing are identical.
func TestRunTracingDeterministic(t *testing.T) {
	g := gen.GNP(40, 0.2, rng.New(21))
	newOpt := func(tr obs.Tracer) Options {
		return Options{MaxRounds: 10, Radio: FlatRadio(0.25, rng.New(13)), Hooks: obs.Hooks{Trace: tr}}
	}
	nodes := func() []Program {
		return Programs(NewUniformNodes(g, 3, rng.New(6).SplitN(g.N())))
	}
	plain, err := Run(g, nodes(), newOpt(nil))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(g, nodes(), newOpt(&obs.Memory{}))
	if err != nil || traced != plain {
		t.Fatalf("tracing perturbed the run: %+v vs %+v (err %v)", traced, plain, err)
	}
}
