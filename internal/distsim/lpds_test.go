package distsim

import (
	"testing"

	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func degreesOf(g *graph.Graph) []int {
	d := make([]int, g.N())
	for v := range d {
		d[v] = g.Degree(v)
	}
	return d
}

func runLPDS(t *testing.T, g *graph.Graph, seed uint64) ([]int, Stats) {
	t.Helper()
	nodes := NewLPDSNodes(degreesOf(g), rng.New(seed).SplitN(g.N()))
	stats, err := Run(g, Programs(nodes), Options{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	return LPDSSet(nodes), stats
}

func TestLPDSProtocolAlwaysDominating(t *testing.T) {
	src := rng.New(1)
	graphs := []*graph.Graph{
		gen.Path(20),
		gen.Star(12),
		gen.Complete(7),
		gen.GNP(150, 0.06, src),
		gen.Circulant(80, 10),
		graph.New(4),
	}
	for i, g := range graphs {
		ds, _ := runLPDS(t, g, uint64(200+i))
		if !domset.IsDominating(g, ds, nil) {
			t.Errorf("graph %d: LP-rounded DS not dominating", i)
		}
	}
}

func TestLPDSProtocolConstantRounds(t *testing.T) {
	for _, n := range []int{50, 200, 800} {
		g := gen.GNP(n, 8.0/float64(n), rng.New(uint64(n)))
		_, stats := runLPDS(t, g, 9)
		if stats.Rounds > 3 {
			t.Fatalf("n=%d: LP-DS used %d rounds, want <= 3", n, stats.Rounds)
		}
	}
}

func TestLPDSProtocolMatchesCentralizedQuality(t *testing.T) {
	// Size within a constant·log factor of the centralized greedy on a
	// regular graph.
	g := gen.Circulant(300, 20)
	ds, _ := runLPDS(t, g, 17)
	central := domset.Greedy(g)
	if len(ds) > 12*len(central) {
		t.Fatalf("protocol DS %d vs centralized greedy %d", len(ds), len(central))
	}
}

func TestLPDSDeterministic(t *testing.T) {
	g := gen.GNP(100, 0.08, rng.New(2))
	a, _ := runLPDS(t, g, 42)
	b, _ := runLPDS(t, g, 42)
	if len(a) != len(b) {
		t.Fatal("not reproducible")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not reproducible")
		}
	}
}
