package distsim

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// MISNode is the per-node program of Luby's randomized maximal independent
// set algorithm, which the paper's related-work section recounts as the
// classical O(log n)-round route to a constant-factor dominating set in unit
// disk graphs (every MIS is a dominating set). Each Luby round costs three
// broadcast rounds here:
//
//	round 3i:   competing nodes broadcast a fresh random priority
//	round 3i+1: local maxima declare themselves IN ("won")
//	round 3i+2: neighbors of winners retire and say "retired"; the rest
//	            loop back with a fresh priority
//
// After the run, In reports membership.
type MISNode struct {
	id    int
	src   *rng.Source
	state int8 // 0 competing, 1 in, -1 out
	phase int8 // position within the 3-broadcast round
	prio  uint64
	In    bool
}

type misPrio struct{ p uint64 }
type misWon struct{}
type misRetired struct{}

// NewMISNodes builds one MISNode per node with independent randomness.
func NewMISNodes(n int, sources []*rng.Source) []*MISNode {
	if len(sources) != n {
		panic(fmt.Sprintf("distsim: %d sources for %d nodes", len(sources), n))
	}
	nodes := make([]*MISNode, n)
	for v := range nodes {
		nodes[v] = &MISNode{id: v, src: sources[v]}
	}
	return nodes
}

// Start broadcasts the first priority.
func (m *MISNode) Start() any {
	m.prio = m.src.Uint64()
	return misPrio{m.prio}
}

// Round implements the three-phase Luby round.
func (m *MISNode) Round(received []any) (any, bool) {
	switch m.phase {
	case 0: // priorities received; am I the local maximum?
		m.phase = 1
		win := true
		for i, msg := range received {
			if pr, ok := msg.(misPrio); ok {
				if pr.p > m.prio || (pr.p == m.prio && i < m.id) {
					win = false
					break
				}
			}
		}
		if win {
			m.state = 1
			m.In = true
			return misWon{}, false
		}
		return nil, false
	case 1: // winners announced; retire if a neighbor won
		m.phase = 2
		if m.state == 1 {
			return nil, true // IN, done
		}
		for _, msg := range received {
			if _, ok := msg.(misWon); ok {
				m.state = -1
				return misRetired{}, true
			}
		}
		return nil, false
	default: // start the next Luby round with a fresh priority
		m.phase = 0
		m.prio = m.src.Uint64()
		return misPrio{m.prio}, false
	}
}

// MISSet extracts the independent set from a finished run.
func MISSet(nodes []*MISNode) []int {
	var out []int
	for v, m := range nodes {
		if m.In {
			out = append(out, v)
		}
	}
	return out
}

// GreedyDSNode is the per-node program of a distributed greedy
// dominating-set algorithm in the spirit of the span-based distributed
// greedies of the paper's related work (Jia–Rajaraman–Suel and the greedy
// analysed by Kuhn–Wattenhofer): in each iteration every still-uncovered
// node computes its span — the number of uncovered nodes in its closed
// neighborhood — and joins the dominating set iff its (span, id) pair is
// undefeated in its 2-hop neighborhood. Covered nodes retire (a
// simplification trading a constant in quality for protocol simplicity).
// One iteration costs four broadcast rounds:
//
//	round 4i:   uncovered nodes broadcast "alive"
//	round 4i+1: broadcast own span = 1 + #alive neighbors
//	round 4i+2: broadcast the best (span, id) seen in N+[v]
//	round 4i+3: undefeated maxima join and announce; the covered retire
//
// After the run, In reports membership; the joined set is dominating.
type GreedyDSNode struct {
	id    int
	phase int8
	span  int
	In    bool
}

type aliveMsg struct{}
type spanMsg struct{ span, id int }
type maxMsg struct{ span, id int }
type joinMsg struct{}

// beats reports whether candidate (as, ai) precedes (bs, bi) in the greedy
// order: larger span first, lower ID on ties.
func beats(as, ai, bs, bi int) bool {
	return as > bs || (as == bs && ai < bi)
}

// NewGreedyDSNodes builds one GreedyDSNode per node.
func NewGreedyDSNodes(n int) []*GreedyDSNode {
	nodes := make([]*GreedyDSNode, n)
	for v := range nodes {
		nodes[v] = &GreedyDSNode{id: v}
	}
	return nodes
}

// Start announces that the node is uncovered.
func (g *GreedyDSNode) Start() any { return aliveMsg{} }

// Round implements the four-phase greedy iteration. Termination: every
// iteration at least the globally best (span, id) pair among uncovered nodes
// is undefeated and joins, so at most n iterations (4n rounds) occur.
func (g *GreedyDSNode) Round(received []any) (any, bool) {
	switch g.phase {
	case 0: // alive messages received: span = self + alive neighbors
		g.phase = 1
		g.span = 1
		for _, msg := range received {
			if _, ok := msg.(aliveMsg); ok {
				g.span++
			}
		}
		return spanMsg{span: g.span, id: g.id}, false
	case 1: // spans received: forward the best pair in N+[v]
		g.phase = 2
		bs, bi := g.span, g.id
		for _, msg := range received {
			if sp, ok := msg.(spanMsg); ok && beats(sp.span, sp.id, bs, bi) {
				bs, bi = sp.span, sp.id
			}
		}
		return maxMsg{span: bs, id: bi}, false
	case 2: // 2-hop maxima received: join iff undefeated
		g.phase = 3
		for _, msg := range received {
			if mx, ok := msg.(maxMsg); ok && beats(mx.span, mx.id, g.span, g.id) {
				return nil, false
			}
		}
		g.In = true
		return joinMsg{}, false
	default: // joiners announced
		g.phase = 0
		if g.In {
			return nil, true
		}
		for _, msg := range received {
			if _, ok := msg.(joinMsg); ok {
				return nil, true // covered: retire
			}
		}
		return aliveMsg{}, false // still uncovered: next iteration
	}
}

// GreedyDSSet extracts the dominating set from a finished run.
func GreedyDSSet(nodes []*GreedyDSNode) []int {
	var out []int
	for v, g := range nodes {
		if g.In {
			out = append(out, v)
		}
	}
	return out
}

// LPDSNode is the per-node program of the constant-round LP-relaxation
// dominating set (domset.LPRoundedDS as a protocol, in the spirit of
// Kuhn–Wattenhofer's constant-time approximation): exchange degrees, set
// x_v = max_{u∈N+[v]} 1/(δ_u+1), join with probability
// min(1, x_v · 2 ln(Δ²_v+2)) where Δ²_v is the local two-hop maximum degree,
// then repair — any node with no joined closed neighbor self-joins.
// Exactly three broadcast rounds, independent of n.
type LPDSNode struct {
	id     int
	degree int
	src    *rng.Source
	phase  int8
	In     bool
}

type degMsg struct{ deg int }
type lpJoinMsg struct{}

// NewLPDSNodes builds one LPDSNode per node with the given degrees and
// randomness streams.
func NewLPDSNodes(degrees []int, sources []*rng.Source) []*LPDSNode {
	if len(sources) != len(degrees) {
		panic(fmt.Sprintf("distsim: %d sources for %d nodes", len(sources), len(degrees)))
	}
	nodes := make([]*LPDSNode, len(degrees))
	for v := range nodes {
		nodes[v] = &LPDSNode{id: v, degree: degrees[v], src: sources[v]}
	}
	return nodes
}

// Start broadcasts the node's degree.
func (l *LPDSNode) Start() any { return degMsg{l.degree} }

// Round implements rounding (phase 0) and repair (phase 1).
func (l *LPDSNode) Round(received []any) (any, bool) {
	switch l.phase {
	case 0:
		l.phase = 1
		x := 1.0 / float64(l.degree+1)
		maxDeg := l.degree
		for _, msg := range received {
			if dm, ok := msg.(degMsg); ok {
				if w := 1.0 / float64(dm.deg+1); w > x {
					x = w
				}
				if dm.deg > maxDeg {
					maxDeg = dm.deg
				}
			}
		}
		p := x * 2 * math.Log(float64(maxDeg+2))
		if p >= 1 || l.src.Float64() < p {
			l.In = true
			return lpJoinMsg{}, false
		}
		return nil, false
	default:
		if l.In {
			return nil, true
		}
		for _, msg := range received {
			if _, ok := msg.(lpJoinMsg); ok {
				return nil, true // covered
			}
		}
		l.In = true // repair: self-join
		return lpJoinMsg{}, true
	}
}

// LPDSSet extracts the dominating set from a finished run.
func LPDSSet(nodes []*LPDSNode) []int {
	var out []int
	for v, l := range nodes {
		if l.In {
			out = append(out, v)
		}
	}
	return out
}
