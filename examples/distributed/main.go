// Distributed: Algorithm 2 as an actual message-passing protocol. Each node
// runs a small state machine, learns its 2-hop energy aggregates in two
// broadcast rounds, and picks its duty slots locally — no coordinator, no
// global view. The simulator counts rounds and messages; the resulting
// schedule is assembled and validated afterwards, exactly as a base station
// overhearing the choices would see it.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/gen"
	"repro/internal/rng"
)

func main() {
	src := rng.New(5)
	g := gen.GNP(500, 0.12, src)
	fmt.Println("network:", g)

	// Heterogeneous batteries.
	batteries := make([]int, g.N())
	for i := range batteries {
		batteries[i] = 5 + src.Intn(11)
	}

	// One independent randomness stream per node: the protocol is fully
	// local and reproducible.
	sources := src.SplitN(g.N())
	nodes := distsim.NewGeneralNodes(g, batteries, 3, sources)

	stats, err := distsim.Run(g, distsim.Programs(nodes), distsim.Options{MaxRounds: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol finished in %d rounds with %d messages (%.2f per edge)\n",
		stats.Rounds, stats.Messages, float64(stats.Messages)/float64(g.M()))

	schedule := distsim.GeneralSchedule(nodes).TruncateInvalid(g, 1)
	if err := schedule.Validate(g, batteries, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled schedule: lifetime %d slots\n", schedule.Lifetime())
	fmt.Printf("Lemma 5.2 guarantee: ≥ %d slots w.h.p.\n",
		core.GeneralGuaranteedSlots(g, batteries, core.Options{K: 3}))
	fmt.Printf("Lemma 5.1 upper bound: %d slots\n",
		core.GeneralUpperBound(g, batteries))
}
