// Planner: the one-call API for deployment engineers. Feed node positions,
// radio range and battery budgets to plan.Build and get back a validated
// cluster-lifetime plan — the right algorithm from the paper is chosen
// automatically, and the optional Squeeze post-pass trades the paper's
// locality for extra lifetime.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/geom"
	"repro/internal/plan"
	"repro/internal/rng"
)

func main() {
	// 250 sensors air-dropped over a 12×12 field, radio range 3.
	points := geom.UniformDeployment(250, 12, rng.New(2026))

	fmt.Println("== plain plan (fully distributed) ==")
	p, err := plan.Build(plan.Spec{
		Points:    points,
		Radius:    3,
		Batteries: []int{5}, // uniform duty budget
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== same deployment, 2-tolerant (survives any single crash) ==")
	ft, err := plan.Build(plan.Spec{
		Points:    points,
		Radius:    3,
		Batteries: []int{5},
		Tolerance: 2,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ft.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== plain plan + centralized squeeze ==")
	sq, err := plan.Build(plan.Spec{
		Points:    points,
		Radius:    3,
		Batteries: []int{5},
		Seed:      1,
		Squeeze:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sq.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
