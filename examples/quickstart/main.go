// Quickstart: deploy a random unit disk network, schedule it with the
// paper's Algorithm 1 (uniform batteries), and compare the achieved
// cluster-lifetime with the Lemma 4.1 upper bound.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/solver"
)

func main() {
	// A 200-node sensor deployment in a 14×14 field with radio range 7:
	// dense enough (δ well above 3·ln n) that the domatic machinery has
	// room to build several disjoint dominating sets.
	src := rng.New(7)
	g, _ := gen.RandomUDG(200, 14, 7, src)
	fmt.Println("deployment:", g)

	// Every node may serve in dominating sets for b = 5 slots. The solver
	// registry resolves "uniform" to the paper's Algorithm 1 and runs the
	// WHP retry driver (30 tries, early stop at the Lemma 4.2 guarantee).
	const b = 5
	budgets := energy.Uniform(g, b)
	in := instance.New(g, budgets)
	schedule, err := solver.Solve(in, solver.Spec{Name: solver.NameUniform},
		solver.Options{Tries: 30, Src: src.Split()})
	if err != nil {
		log.Fatal(err)
	}

	// The driver validated the schedule already; Validate double-checks.
	if err := schedule.Validate(g, budgets, 1); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schedule: %d phases, lifetime %d slots\n",
		len(schedule.Phases), schedule.Lifetime())
	fmt.Printf("upper bound on any schedule (Lemma 4.1): %d slots\n",
		core.UniformUpperBound(g, b))
	fmt.Printf("naive always-on baseline: %d slots\n", b)
	guaranteed, err := solver.Guaranteed(in, solver.Spec{Name: solver.NameUniform})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guaranteed by Theorem 4.3 w.h.p.: ≥ %d slots\n", guaranteed)

	if schedule.Lifetime() <= b {
		fmt.Println("(dense deployments give the scheduler room; sparse ones degrade to the baseline)")
	}

	// Print the first few phases.
	for i, p := range schedule.Phases {
		if i == 3 {
			fmt.Printf("  … %d more phases\n", len(schedule.Phases)-3)
			break
		}
		fmt.Printf("  phase %d: %d clusterheads for %d slots\n", i, len(p.Set), p.Duration)
	}
	os.Exit(0)
}
