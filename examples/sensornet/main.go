// Sensornet: the data-gathering scenario from the paper's introduction.
// Nodes with heterogeneous batteries monitor a field; at every time slot
// only a dominating set needs to stay awake, and each sleeping node hands
// its reading to an awake clusterhead. We execute three schedules on the
// energy simulator and compare how long the network keeps full coverage:
//
//  1. naive all-on (no scheduling),
//  2. the centralized greedy domatic partition, and
//  3. the paper's distributed Algorithm 2.
package main

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/sensim"
	"repro/internal/solver"
)

func main() {
	src := rng.New(2024)
	g, _ := gen.RandomUDG(300, 16, 4.5, src)
	fmt.Println("deployment:", g)

	// Heterogeneous duty budgets in [5, 20] — e.g. mixed battery ages.
	batteries := make([]int, g.N())
	minB := 20
	for i := range batteries {
		batteries[i] = 5 + src.Intn(16)
		if batteries[i] < minB {
			minB = batteries[i]
		}
	}
	fmt.Printf("duty budgets: 5..20 (energy coverage bound: %d slots)\n\n",
		core.GeneralUpperBound(g, batteries))

	// The data travels to a sink over a BFS aggregation tree (paper §2: the
	// duty budget b_v reserves battery precisely for this delivery).
	tree, err := agg.NewBFSTree(g, 0)
	if err != nil {
		fmt.Println("deployment disconnected; re-run with a larger radius:", err)
		return
	}

	execute := func(name string, s *core.Schedule) {
		net := energy.NewNetwork(g, batteries)
		res := sensim.Run(net, s, sensim.Options{K: 1})
		// Tree transmissions: each slot, the active clusterheads push their
		// aggregates to the sink.
		tx := 0
		for t := 0; t < res.AchievedLifetime; t++ {
			tx += tree.DeliveryCost(s.ActiveAt(t))
		}
		fmt.Printf("%-24s nominal %3d slots   achieved %3d slots   %6d readings   %6d tree transmissions\n",
			name, s.Lifetime(), res.AchievedLifetime, res.ReportsDelivered, tx)
	}

	// 1. Naive: everyone stays awake; the weakest battery caps the lifetime.
	execute("naive all-on", sensim.NaiveAllOn(g.N(), minB))

	// 2. Centralized greedy partition, each class run for the minimum
	// battery of its members (a simple residual-aware refinement).
	partition := domatic.GreedyPartition(g, domatic.GreedyExtractor)
	greedySchedule := &core.Schedule{}
	for _, class := range partition {
		dur := 0
		for i, v := range class {
			if i == 0 || batteries[v] < dur {
				dur = batteries[v]
			}
		}
		greedySchedule.Phases = append(greedySchedule.Phases,
			core.Phase{Set: class, Duration: dur})
	}
	execute("greedy partition", greedySchedule)

	// 3. Algorithm 2 — distributed, constant rounds, O(log(b_max·n))
	// approximation w.h.p. with the paper's analysis constant K = 3.
	in := instance.New(g, batteries).WithHint(instance.Hint{Family: "udg"})
	solve := func(spec solver.Spec) *core.Schedule {
		s, err := solver.Solve(in, spec,
			solver.Options{Tries: 30, Src: src.Split()})
		if err != nil {
			panic(err)
		}
		return s
	}
	execute("Algorithm 2 (K=3)", solve(solver.Spec{Name: solver.NameGeneral}))

	// 4. The same algorithm with K = 1: the proof constant is conservative;
	// in practice a 3× wider color range usually still validates (the WHP
	// driver checks and retries), tripling the lifetime.
	execute("Algorithm 2 (K=1)", solve(solver.Spec{Name: solver.NameGeneral, KConst: 1}))

	fmt.Println("\nthe centralized greedy tracks the energy-coverage bound; the distributed")
	fmt.Println("algorithm pays the Theorem 5.3 logarithmic factor for its 2 message rounds.")
}
