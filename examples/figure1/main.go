// Figure1: the paper's worked example, solved exactly. Reconstructs the
// 7-node instance of Figure 1 (non-uniform batteries, optimal lifetime 6),
// certifies the optimum with the exact solver and the LP relaxation, and
// prints the optimal schedule as the Gantt chart the figure depicts.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/experiments"
)

func main() {
	g, batteries := experiments.Figure1Instance()
	fmt.Println("instance:", g)
	fmt.Println("batteries:", batteries)
	fmt.Println()

	bound := core.GeneralUpperBound(g, batteries)
	fmt.Printf("Lemma 5.1 upper bound (min energy coverage): %d\n", bound)

	opt, sets, durs := exact.Integral(g, batteries, 1)
	fmt.Printf("exact integral optimum:                      %d\n", opt)

	frac, allSets, _, err := exact.Fractional(g, batteries, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fractional LP optimum:                       %.3f\n", frac)
	fmt.Printf("minimal dominating sets of the instance:     %d\n", len(allSets))
	fmt.Println()

	schedule := &core.Schedule{}
	for i, set := range sets {
		schedule.Phases = append(schedule.Phases, core.Phase{Set: set, Duration: durs[i]})
	}
	if err := schedule.Validate(g, batteries, 1); err != nil {
		log.Fatal(err)
	}

	fmt.Println("one optimal schedule (the optimum is not unique):")
	if err := schedule.Gantt(os.Stdout, g.N()); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// The binding node: after slot 6 its whole closed neighborhood is
	// depleted — the situation the paper's figure caption describes.
	usage := schedule.Usage(g.N())
	fmt.Println("residual battery after the schedule:")
	for v := range batteries {
		fmt.Printf("  node %d: %d of %d left\n", v, batteries[v]-usage[v], batteries[v])
	}
}
