// Faulttolerant: node failure is "an event of non-negligible probability"
// (paper, §1). A plain dominating-set schedule can lose a node's coverage as
// soon as the few clusterheads responsible for it crash; a k-dominating
// schedule from Algorithm 3 provably absorbs any k-1 failures per
// neighborhood. This example plays an *adversary with a kill budget f*: it
// inspects each schedule, finds the earliest phase in which some victim node
// is served by at most f clusterheads, and crashes exactly those nodes at
// time 0. The k-tolerant schedule cannot be broken until f reaches k.
package main

import (
	"fmt"
	"math"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/sensim"
	"repro/internal/solver"
)

func main() {
	src := rng.New(99)
	n := 400
	g := gen.GNP(n, 22*math.Log(float64(n))/float64(n), src)
	fmt.Println("network:", g)

	const b = 6
	const k = 3 // every node keeps 3 clusterheads in range

	// The lifetime-maximal plain schedule: a greedy domatic partition run
	// class by class. Near-optimal lifetime, but each phase gives many
	// nodes exactly one clusterhead — zero redundancy.
	partition := domatic.GreedyPartition(g, domatic.GreedyExtractor)
	plain := core.FromPartition(partition, b)
	tolerant, err := solver.Solve(instance.New(g, energy.Uniform(g, b)).WithK(k),
		solver.Spec{Name: solver.NameFT},
		solver.Options{Tries: 30, Src: src.Split()})
	if err != nil {
		panic(err)
	}

	fmt.Printf("plain schedule (greedy partition): lifetime %d (1-dominating)\n", plain.Lifetime())
	fmt.Printf("k-tolerant schedule (Algorithm 3): lifetime %d (%d-dominating)\n\n", tolerant.Lifetime(), k)

	// The adversary targets the weakest node: one of minimum degree.
	victim := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) < g.Degree(victim) {
			victim = v
		}
	}
	fmt.Printf("adversary targets node %d (degree %d)\n\n", victim, g.Degree(victim))

	for _, budget := range []int{1, k - 1} {
		fmt.Printf("kill budget f = %d:\n", budget)
		report("  plain", g, plain, victim, budget, b)
		report("  k-tolerant", g, tolerant, victim, budget, b)
	}

	fmt.Println("\nthe k-dominating schedule provably survives ANY k-1 crashes per")
	fmt.Println("neighborhood (here k = 3); the lifetime-maximal plain schedule is")
	fmt.Println("broken by a single well-aimed failure — the trade-off §6 motivates.")

	// Act two: the online alternative to pre-provisioning. Under a chaos
	// plan (random crashes + a regional blackout + battery leaks) the SAME
	// plain schedule runs once statically and once under the self-healing
	// runtime, which patches coverage holes by recruiting replacement
	// clusterheads with a distributed protocol, replans over residual
	// batteries when patching fails, and degrades gracefully otherwise.
	fmt.Println("\n--- self-healing under a chaos plan ---")
	plan := chaos.Merge(
		chaos.Crashes(g, 30, plain.Lifetime(), src.Split()),
		chaos.Blackouts(g, 2, 3, plain.Lifetime(), src.Split()),
		chaos.LeakSpikes(g, 20, 2, plain.Lifetime(), src.Split()),
	)
	fmt.Printf("chaos plan: %d crashes, %d battery leaks\n", plan.CrashCount(), len(plan.Leaks))

	netStatic := energy.NewNetwork(g, energy.Uniform(g, b))
	static := sensim.Run(netStatic, plain, sensim.Options{K: 1, Inject: plan.Injector()})
	fmt.Printf("static run:  covered %3d/%3d slots", static.AchievedLifetime, plain.Lifetime())
	if static.FirstViolation >= 0 {
		fmt.Printf(" (first hole at slot %d, then runs degraded)", static.FirstViolation)
	}
	fmt.Println()

	netHeal := energy.NewNetwork(g, energy.Uniform(g, b))
	healed := heal.Run(netHeal, plain, heal.Options{K: 1, Chaos: plan, Loss: 0.15, Src: src.Split()})
	fmt.Printf("healed run:  covered %3d/%3d slots — %d recruits over %d patches, %d replans, %d degraded slots\n",
		healed.AchievedLifetime, plain.Lifetime(), healed.Recruited,
		healed.PatchSuccesses, healed.Replans, healed.DegradedSlots)
	fmt.Printf("repair traffic: %d messages in %d protocol rounds (%d dropped by the 15%% lossy radio)\n",
		healed.Protocol.Messages, healed.Protocol.Rounds, healed.Protocol.Dropped)

	fmt.Println("\npre-provisioning (Algorithm 3) buys provable tolerance up front at ~k×")
	fmt.Println("energy; online healing keeps a cheap 1-dominating schedule alive by")
	fmt.Println("repairing holes as they open — E23 quantifies the trade.")
}

// report crashes the victim's serving clusterheads in the earliest
// breakable phase (one with at most `budget` servers of the victim) and
// executes the schedule.
func report(name string, g *graph.Graph, s *core.Schedule, victim, budget, b int) {
	plan := sensim.AdversarialPlan(g, s, victim, budget)
	net := energy.NewNetwork(g, energy.Uniform(g, b))
	res := sensim.Run(net, s, sensim.Options{K: 1, Failures: plan})
	status := "SURVIVED — adversary cannot break it"
	if res.FirstViolation >= 0 {
		status = fmt.Sprintf("coverage lost at slot %d", res.FirstViolation)
	}
	fmt.Printf("%-13s covered %3d/%3d slots — %s\n",
		name, res.AchievedLifetime, s.Lifetime(), status)
}
